#include "catalog/query_spec.h"

#include <algorithm>
#include <cmath>

namespace dphyp {

int QuerySpec::AddRelation(std::string name, double cardinality, int num_columns) {
  RelationInfo info;
  info.name = std::move(name);
  info.cardinality = cardinality;
  info.num_columns = num_columns;
  relations.push_back(std::move(info));
  return static_cast<int>(relations.size()) - 1;
}

int QuerySpec::AddSimplePredicate(int left, int right, double selectivity,
                                  OpType op) {
  return AddComplexPredicate(NodeSet::Single(left), NodeSet::Single(right),
                             selectivity, op);
}

int QuerySpec::AddComplexPredicate(NodeSet left, NodeSet right, double selectivity,
                                   OpType op, NodeSet flex) {
  Predicate p;
  p.left = left;
  p.right = right;
  p.flex = flex;
  p.selectivity = selectivity;
  p.op = op;
  predicates.push_back(std::move(p));
  return static_cast<int>(predicates.size()) - 1;
}

void QuerySpec::BindCatalog(std::shared_ptr<const Catalog> bound) {
  catalog = std::move(bound);
  if (catalog == nullptr) {
    for (RelationInfo& rel : relations) rel.table_id = -1;
    return;
  }
  for (RelationInfo& rel : relations) {
    rel.table_id = catalog->IndexOf(rel.name);
    if (rel.table_id < 0) continue;
    std::optional<TableStats> stats = catalog->TableAt(rel.table_id);
    if (stats.has_value() && stats->row_count > 0.0) {
      rel.cardinality = stats->row_count;
    }
  }
}

Result<bool> QuerySpec::Validate() const {
  const NodeSet all = AllRelations();
  if (relations.empty()) return Err("query has no relations");
  if (NumRelations() > NodeSet::kMaxNodes) {
    return Err("more than 64 relations are not supported");
  }
  for (int i = 0; i < NumRelations(); ++i) {
    const RelationInfo& r = relations[i];
    if (r.cardinality <= 0) {
      return Err("relation " + r.name + " has non-positive cardinality");
    }
    if (!r.free_tables.IsSubsetOf(all)) {
      return Err("relation " + r.name + " references unknown free tables");
    }
    if (r.free_tables.Contains(i)) {
      return Err("relation " + r.name + " lists itself as a free table");
    }
    for (const ColumnRange& f : r.filters) {
      if (f.column < 0 || f.column >= r.num_columns) {
        return Err("relation " + r.name + " filter references unknown column");
      }
      if (f.hi < f.lo) {
        return Err("relation " + r.name + " has an empty filter range");
      }
    }
  }
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    std::string tag = "predicate #" + std::to_string(i);
    if (p.left.Empty() || p.right.Empty()) {
      return Err(tag + " has an empty side");
    }
    if (p.left.Intersects(p.right) || p.left.Intersects(p.flex) ||
        p.right.Intersects(p.flex)) {
      return Err(tag + " sides are not pairwise disjoint");
    }
    if (!p.AllTables().IsSubsetOf(all)) {
      return Err(tag + " references unknown relations");
    }
    if (!(p.selectivity > 0.0) || p.selectivity > 1.0) {
      return Err(tag + " selectivity outside (0, 1]");
    }
    for (const ColumnRef& ref : p.refs) {
      if (ref.table < 0 || ref.table >= NumRelations()) {
        return Err(tag + " payload references unknown table");
      }
      if (ref.column < 0 || ref.column >= relations[ref.table].num_columns) {
        return Err(tag + " payload references unknown column");
      }
    }
    if (p.modulus < 1) return Err(tag + " has modulus < 1");
    if (p.kind == PredicateKind::kEq && !p.refs.empty() && p.refs.size() < 2) {
      return Err(tag + " is an equality over fewer than two columns");
    }
  }
  return true;
}

void QuerySpec::FillDefaultPayloads() {
  for (Predicate& p : predicates) {
    if (!p.refs.empty()) continue;
    for (int t : p.AllTables()) {
      p.refs.push_back(ColumnRef{t, 0});
    }
    if (p.kind == PredicateKind::kEq) continue;  // modulus unused
    // A sum-mod-k predicate over independently uniform columns matches about
    // 1/k of combinations; pick k ~= 1/selectivity.
    double inv = 1.0 / std::max(1e-6, p.selectivity);
    p.modulus = std::max<int64_t>(1, static_cast<int64_t>(std::llround(inv)));
  }
}

bool QuerySpec::HasComplexPredicates() const {
  for (const Predicate& p : predicates) {
    if (!p.IsSimple()) return true;
  }
  return false;
}

bool QuerySpec::HasNonInnerPredicates() const {
  for (const Predicate& p : predicates) {
    if (p.op != OpType::kJoin) return true;
  }
  return false;
}

bool QuerySpec::HasDependentLeaves() const {
  for (const RelationInfo& r : relations) {
    if (!r.free_tables.Empty()) return true;
  }
  return false;
}

}  // namespace dphyp
