#include "workload/jobgen.h"

#include <algorithm>
#include <set>
#include <utility>

#include "stats/analyze.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace dphyp {

namespace {

/// The shared column-1 derivation: a fixed bijection of the join key (the
/// domain is even, 7 is odd, so *7+3 mod domain permutes it). Because every
/// table applies the same function, `a.c0 = b.c0` implies `a.c1 = b.c1` —
/// the fully correlated predicate pair.
int64_t CorrelatedValue(int64_t key, int64_t domain) {
  return (key * 7 + 3) % domain;
}

}  // namespace

JobWorkload GenerateJobWorkload(const JobGenOptions& opts) {
  DPHYP_CHECK(opts.num_tables >= 2 && opts.rows_per_table >= 4 &&
              opts.domain >= 4);
  JobWorkload w;
  w.options = opts;
  Rng rng(opts.seed);
  ZipfSampler zipf(static_cast<int>(opts.domain), opts.zipf_s);

  // ---- Table pool: Zipf join key, correlated companion, uniform filter.
  std::vector<RelationInfo> pool_infos;
  for (int t = 0; t < opts.num_tables; ++t) {
    ExecRelation rel;
    rel.num_columns = 3;
    // Vary sizes so join orders actually matter.
    const int rows = opts.rows_per_table / 2 +
                     static_cast<int>(rng.Uniform(opts.rows_per_table));
    rel.rows.reserve(rows);
    for (int r = 0; r < rows; ++r) {
      const int64_t key = zipf.Sample(rng);
      rel.rows.push_back({key, CorrelatedValue(key, opts.domain),
                          rng.UniformInt(0, opts.domain - 1)});
    }
    w.pool.push_back(std::move(rel));
    w.pool_names.push_back("J" + std::to_string(t));
    RelationInfo info;
    info.name = w.pool_names.back();
    info.cardinality = rows;
    info.num_columns = 3;
    pool_infos.push_back(std::move(info));
  }

  // ---- The naive catalog: exact row counts, ndv and bounds, nothing else.
  w.naive_catalog = std::make_shared<Catalog>();
  for (int t = 0; t < opts.num_tables; ++t) {
    TableStats stats;
    stats.name = w.pool_names[t];
    stats.row_count = static_cast<double>(w.pool[t].NumRows());
    for (int c = 0; c < 3; ++c) {
      std::set<int64_t> distinct;
      for (const auto& row : w.pool[t].rows) distinct.insert(row[c]);
      ColumnStats cs;
      cs.distinct_count = static_cast<double>(distinct.size());
      cs.min_value = static_cast<double>(*distinct.begin());
      cs.max_value = static_cast<double>(*distinct.rbegin());
      stats.columns.push_back(std::move(cs));
    }
    w.naive_catalog->AddTable(std::move(stats));
  }

  // ---- The full catalog: an exhaustive ANALYZE (sample = whole pool)
  // plus the correlation the generator knows it baked in. Every pair
  // shares the column-1 derivation, so every pair is fully correlated.
  w.full_catalog = std::make_shared<Catalog>();
  AnalyzeOptions analyze;
  analyze.sample_size = opts.num_tables * opts.rows_per_table * 2;
  analyze.seed = opts.seed ^ 0xa7a1u;
  AnalyzeDataset(Dataset::FromTables(w.pool), pool_infos, analyze,
                 w.full_catalog.get());
  for (int a = 0; a < opts.num_tables; ++a) {
    for (int b = a + 1; b < opts.num_tables; ++b) {
      w.full_catalog->SetTablePairCorrelation(w.pool_names[a],
                                              w.pool_names[b], 1.0);
    }
  }

  // ---- Queries: seeded chain joins over distinct pool tables.
  const int max_rels = std::min(opts.max_relations, opts.num_tables);
  const int min_rels = std::min(opts.min_relations, max_rels);
  for (int q = 0; q < opts.num_queries; ++q) {
    const int k = static_cast<int>(rng.UniformInt(min_rels, max_rels));
    std::vector<int> chosen(opts.num_tables);
    for (int i = 0; i < opts.num_tables; ++i) chosen[i] = i;
    for (int i = 0; i < k; ++i) {  // partial Fisher-Yates
      const int j = i + static_cast<int>(rng.Uniform(opts.num_tables - i));
      std::swap(chosen[i], chosen[j]);
    }
    chosen.resize(k);

    JobQuery jq;
    jq.pool_tables = chosen;
    for (int i = 0; i < k; ++i) {
      jq.spec.AddRelation(w.pool_names[chosen[i]],
                          static_cast<double>(w.pool[chosen[i]].NumRows()),
                          /*num_columns=*/3);
    }
    for (int i = 1; i < k; ++i) {
      const int a = i - 1;
      const int b = i;
      Predicate key_eq;
      key_eq.left = NodeSet::Single(a);
      key_eq.right = NodeSet::Single(b);
      key_eq.kind = PredicateKind::kEq;
      key_eq.refs = {ColumnRef{a, 0}, ColumnRef{b, 0}};
      key_eq.derive_selectivity = true;  // the models' problem to estimate
      jq.spec.predicates.push_back(key_eq);
      if (rng.Bernoulli(opts.correlated_pair_prob)) {
        Predicate corr_eq = key_eq;
        corr_eq.refs = {ColumnRef{a, 1}, ColumnRef{b, 1}};
        jq.spec.predicates.push_back(std::move(corr_eq));
      }
    }
    if (rng.Bernoulli(opts.range_filter_prob)) {
      const int rel = static_cast<int>(rng.Uniform(k));
      ColumnRange filter;
      filter.column = 2;
      filter.lo = 0;
      filter.hi = rng.UniformInt(opts.domain / 4, opts.domain - 2);
      jq.spec.relations[rel].filters.push_back(filter);
    }
    jq.spec.BindCatalog(w.naive_catalog);
    w.queries.push_back(std::move(jq));
  }
  return w;
}

Dataset DatasetForJobQuery(const JobWorkload& workload, int query_index) {
  DPHYP_CHECK(query_index >= 0 &&
              query_index < static_cast<int>(workload.queries.size()));
  const JobQuery& q = workload.queries[query_index];
  std::vector<ExecRelation> tables;
  tables.reserve(q.pool_tables.size());
  for (int t : q.pool_tables) tables.push_back(workload.pool[t]);
  return Dataset::FromTables(std::move(tables));
}

}  // namespace dphyp
