// A small analytics (star-schema) workload in the spirit of the Star Schema
// Benchmark: one fact table, four dimensions, and a set of named queries of
// increasing complexity — including variants with non-inner joins and a
// cross-dimension hyperedge. Used by tests and examples as a "realistic"
// counterpart to the synthetic families of Sec. 4.
#ifndef DPHYP_WORKLOAD_ANALYTICS_H_
#define DPHYP_WORKLOAD_ANALYTICS_H_

#include <string>
#include <vector>

#include "catalog/query_spec.h"

namespace dphyp {

/// A named query of the analytics workload.
struct AnalyticsQuery {
  std::string name;
  std::string description;
  QuerySpec spec;
};

/// All queries of the workload. Selections are folded into effective
/// cardinalities/selectivities, as a real optimizer's cardinality model
/// would provide them.
std::vector<AnalyticsQuery> AnalyticsQueries();

}  // namespace dphyp

#endif  // DPHYP_WORKLOAD_ANALYTICS_H_
