#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace dphyp {

namespace {

/// Shared helper: adds n relations with seeded random cardinalities.
Rng AddRelations(QuerySpec* spec, int n, const WorkloadOptions& opts) {
  Rng rng(opts.seed);
  for (int i = 0; i < n; ++i) {
    double card = rng.UniformDouble(opts.min_cardinality, opts.max_cardinality);
    spec->AddRelation("R" + std::to_string(i), card);
  }
  return rng;
}

double RandomSelectivity(Rng& rng, const WorkloadOptions& opts) {
  return rng.UniformDouble(opts.min_selectivity, opts.max_selectivity);
}

NodeSet SetOf(const std::vector<int>& nodes) {
  NodeSet s;
  for (int v : nodes) s |= NodeSet::Single(v);
  return s;
}

/// A hyperedge under construction: ordered node lists per side.
struct SplitEdge {
  std::vector<int> u;
  std::vector<int> v;
  bool IsSimple() const { return u.size() == 1 && v.size() == 1; }
};

/// Applies `splits` FIFO split operations to the initial edge and returns
/// the resulting edge list (see header for the pairing rule).
std::vector<SplitEdge> SplitSeries(SplitEdge initial, int splits) {
  std::deque<SplitEdge> queue{std::move(initial)};
  for (int i = 0; i < splits; ++i) {
    // Find the first non-simple edge.
    size_t pos = 0;
    while (pos < queue.size() && queue[pos].IsSimple()) ++pos;
    DPHYP_CHECK_MSG(pos < queue.size(), "more splits requested than possible");
    SplitEdge edge = queue[pos];
    queue.erase(queue.begin() + pos);
    size_t hu = edge.u.size() / 2;
    size_t hv = edge.v.size() / 2;
    std::vector<int> u_lo(edge.u.begin(), edge.u.begin() + hu);
    std::vector<int> u_hi(edge.u.begin() + hu, edge.u.end());
    std::vector<int> v_lo(edge.v.begin(), edge.v.begin() + hv);
    std::vector<int> v_hi(edge.v.begin() + hv, edge.v.end());
    SplitEdge a, b;
    if (u_lo.size() >= 2) {
      // Crosswise pairing while halves are hypernodes.
      a = SplitEdge{u_lo, v_hi};
      b = SplitEdge{u_hi, v_lo};
    } else {
      // Index-aligned pairing for singletons (avoids duplicating the base
      // graph's simple edges).
      a = SplitEdge{u_lo, v_lo};
      b = SplitEdge{u_hi, v_hi};
    }
    queue.push_back(std::move(a));
    queue.push_back(std::move(b));
  }
  return {queue.begin(), queue.end()};
}

}  // namespace

QuerySpec MakeChainQuery(int n, const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 1);
  QuerySpec spec;
  Rng rng = AddRelations(&spec, n, opts);
  for (int i = 0; i + 1 < n; ++i) {
    spec.AddSimplePredicate(i, i + 1, RandomSelectivity(rng, opts));
  }
  spec.FillDefaultPayloads();
  return spec;
}

QuerySpec MakeCycleQuery(int n, const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 3);
  QuerySpec spec;
  Rng rng = AddRelations(&spec, n, opts);
  for (int i = 0; i + 1 < n; ++i) {
    spec.AddSimplePredicate(i, i + 1, RandomSelectivity(rng, opts));
  }
  spec.AddSimplePredicate(0, n - 1, RandomSelectivity(rng, opts));
  spec.FillDefaultPayloads();
  return spec;
}

QuerySpec MakeStarQuery(int satellites, const WorkloadOptions& opts) {
  DPHYP_CHECK(satellites >= 1);
  QuerySpec spec;
  Rng rng = AddRelations(&spec, satellites + 1, opts);
  // Make the hub the largest relation, as in a warehouse fact table.
  spec.relations[0].cardinality = opts.max_cardinality * 10;
  for (int i = 1; i <= satellites; ++i) {
    spec.AddSimplePredicate(0, i, RandomSelectivity(rng, opts));
  }
  spec.FillDefaultPayloads();
  return spec;
}

QuerySpec MakeCliqueQuery(int n, const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 2);
  QuerySpec spec;
  Rng rng = AddRelations(&spec, n, opts);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      spec.AddSimplePredicate(i, j, RandomSelectivity(rng, opts));
    }
  }
  spec.FillDefaultPayloads();
  return spec;
}

int MaxHyperedgeSplits(int side) { return side - 1; }

QuerySpec MakeCycleHypergraphQuery(int n, int splits, const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 4 && n % 4 == 0);
  DPHYP_CHECK(splits >= 0 && splits <= MaxHyperedgeSplits(n / 2));
  QuerySpec spec = MakeCycleQuery(n, opts);
  Rng rng(opts.seed ^ 0x9e3779b97f4a7c15ULL);

  SplitEdge initial;
  for (int i = 0; i < n / 2; ++i) initial.u.push_back(i);
  for (int i = n / 2; i < n; ++i) initial.v.push_back(i);
  for (const SplitEdge& e : SplitSeries(initial, splits)) {
    spec.AddComplexPredicate(SetOf(e.u), SetOf(e.v),
                             RandomSelectivity(rng, opts));
  }
  spec.FillDefaultPayloads();
  return spec;
}

QuerySpec MakeStarHypergraphQuery(int satellites, int splits,
                                  const WorkloadOptions& opts) {
  DPHYP_CHECK(satellites >= 4 && satellites % 4 == 0);
  DPHYP_CHECK(splits >= 0 && splits <= MaxHyperedgeSplits(satellites / 2));
  QuerySpec spec = MakeStarQuery(satellites, opts);
  Rng rng(opts.seed ^ 0xbf58476d1ce4e5b9ULL);

  SplitEdge initial;
  for (int i = 1; i <= satellites / 2; ++i) initial.u.push_back(i);
  for (int i = satellites / 2 + 1; i <= satellites; ++i) initial.v.push_back(i);
  for (const SplitEdge& e : SplitSeries(initial, splits)) {
    spec.AddComplexPredicate(SetOf(e.u), SetOf(e.v),
                             RandomSelectivity(rng, opts));
  }
  spec.FillDefaultPayloads();
  return spec;
}

QuerySpec MakeRandomGraphQuery(int n, double extra_edge_prob, uint64_t seed,
                               const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 1);
  WorkloadOptions local = opts;
  local.seed = seed;
  QuerySpec spec;
  Rng rng = AddRelations(&spec, n, local);
  // Random spanning tree: attach each node to a random earlier node.
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.Uniform(i));
    spec.AddSimplePredicate(parent, i, RandomSelectivity(rng, local));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(extra_edge_prob)) {
        spec.AddSimplePredicate(i, j, RandomSelectivity(rng, local));
      }
    }
  }
  spec.FillDefaultPayloads();
  return spec;
}

QuerySpec MakeRandomHypergraphQuery(int n, int num_complex_edges, uint64_t seed,
                                    const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 3);
  WorkloadOptions local = opts;
  local.seed = seed;
  QuerySpec spec;
  Rng rng = AddRelations(&spec, n, local);
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.Uniform(i));
    spec.AddSimplePredicate(parent, i, RandomSelectivity(rng, local));
  }
  for (int e = 0; e < num_complex_edges; ++e) {
    // Draw two disjoint sides; ensure at least one side has >= 2 nodes.
    for (int attempt = 0; attempt < 64; ++attempt) {
      int lsize = static_cast<int>(rng.Uniform(3)) + 1;
      int rsize = static_cast<int>(rng.Uniform(3)) + 1;
      if (lsize == 1 && rsize == 1) rsize = 2;
      if (lsize + rsize > n) continue;
      NodeSet left, right;
      while (left.Count() < lsize) {
        left |= NodeSet::Single(static_cast<int>(rng.Uniform(n)));
      }
      while (right.Count() < rsize) {
        int v = static_cast<int>(rng.Uniform(n));
        if (!left.Contains(v)) right |= NodeSet::Single(v);
      }
      spec.AddComplexPredicate(left, right, RandomSelectivity(rng, local));
      break;
    }
  }
  spec.FillDefaultPayloads();
  return spec;
}

std::vector<QuerySpec> GenerateTrafficMix(int count,
                                          const TrafficMixOptions& opts) {
  DPHYP_CHECK(count >= 0);
  DPHYP_CHECK(opts.min_relations >= 1);
  DPHYP_CHECK(opts.max_relations >= opts.min_relations);
  Rng rng(opts.seed);

  double weights[4] = {opts.chain_weight, opts.star_weight, opts.cycle_weight,
                       opts.clique_weight};
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  if (total_weight <= 0.0) {
    for (double& w : weights) w = 1.0;
    total_weight = 4.0;
  }

  auto make_template = [&](uint64_t template_seed) {
    double pick = rng.UniformDouble(0.0, total_weight);
    int shape = 0;
    while (shape < 3 && pick >= weights[shape]) pick -= weights[shape], ++shape;
    WorkloadOptions wopts = opts.workload;
    wopts.seed = template_seed;
    int n = static_cast<int>(
        rng.UniformInt(opts.min_relations, opts.max_relations));
    switch (shape) {
      case 0:
        return MakeChainQuery(n, wopts);
      case 1:
        // MakeStarQuery takes the satellite count; keep total relations in
        // the configured range.
        return MakeStarQuery(std::max(1, n - 1), wopts);
      case 2:
        return MakeCycleQuery(std::max(3, n), wopts);
      default:
        return MakeCliqueQuery(
            std::min(n, std::max(opts.min_relations, opts.clique_max_relations)),
            wopts);
    }
  };

  // A finite template pool, then traffic sampled from it.
  const int pool_size = opts.distinct_templates > 0
                            ? std::min(opts.distinct_templates, count)
                            : count;
  std::vector<QuerySpec> pool;
  pool.reserve(pool_size);
  for (int i = 0; i < pool_size; ++i) {
    pool.push_back(make_template(opts.seed * 0x9e3779b97f4a7c15ULL + i + 1));
  }

  std::vector<QuerySpec> traffic;
  traffic.reserve(count);
  if (opts.distinct_templates <= 0) {
    traffic = std::move(pool);
  } else {
    for (int i = 0; i < count; ++i) {
      traffic.push_back(pool[rng.Uniform(pool.size())]);
    }
  }
  return traffic;
}

ZipfSampler::ZipfSampler(int n, double s) {
  DPHYP_CHECK(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();  // in [0, 1)
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int>(it - cdf_.begin());
}

std::vector<double> PoissonArrivalTimes(int count, double rate_per_sec,
                                        Rng& rng) {
  DPHYP_CHECK(rate_per_sec > 0.0);
  std::vector<double> arrivals;
  arrivals.reserve(count);
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    // Inverse-CDF exponential gap. 1 - u is in (0, 1], so the log is
    // finite and the gap nonnegative.
    const double u = rng.UniformDouble();
    t += -std::log(1.0 - u) / rate_per_sec;
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace dphyp
