#include "workload/wide_gen.h"

#include <string>

#include "util/check.h"
#include "util/rng.h"

namespace dphyp {

namespace {

/// Shared helper mirroring generators.cc: n relations with seeded random
/// cardinalities, added directly to the wide graph.
Rng AddWideRelations(WideHypergraph* graph, int n,
                     const WorkloadOptions& opts) {
  Rng rng(opts.seed);
  for (int i = 0; i < n; ++i) {
    WideHypergraphNode node;
    node.name = "R" + std::to_string(i);
    node.cardinality =
        rng.UniformDouble(opts.min_cardinality, opts.max_cardinality);
    graph->AddNode(std::move(node));
  }
  return rng;
}

void AddWideSimpleEdge(WideHypergraph* graph, int a, int b, Rng& rng,
                       const WorkloadOptions& opts) {
  WideHyperedge edge;
  edge.left = WideNodeSet::Single(a);
  edge.right = WideNodeSet::Single(b);
  edge.selectivity =
      rng.UniformDouble(opts.min_selectivity, opts.max_selectivity);
  graph->AddEdge(std::move(edge));
}

}  // namespace

WideHypergraph MakeWideChainGraph(int n, const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 1 && n <= WideNodeSet::kMaxNodes);
  WideHypergraph graph;
  Rng rng = AddWideRelations(&graph, n, opts);
  for (int i = 0; i + 1 < n; ++i) {
    AddWideSimpleEdge(&graph, i, i + 1, rng, opts);
  }
  return graph;
}

WideHypergraph MakeWideCycleGraph(int n, const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 3 && n <= WideNodeSet::kMaxNodes);
  WideHypergraph graph;
  Rng rng = AddWideRelations(&graph, n, opts);
  for (int i = 0; i + 1 < n; ++i) {
    AddWideSimpleEdge(&graph, i, i + 1, rng, opts);
  }
  AddWideSimpleEdge(&graph, 0, n - 1, rng, opts);
  return graph;
}

WideHypergraph MakeWideStarGraph(int satellites, const WorkloadOptions& opts) {
  DPHYP_CHECK(satellites >= 1 && satellites + 1 <= WideNodeSet::kMaxNodes);
  WideHypergraph graph;
  Rng rng(opts.seed);
  for (int i = 0; i <= satellites; ++i) {
    WideHypergraphNode node;
    node.name = "R" + std::to_string(i);
    node.cardinality =
        rng.UniformDouble(opts.min_cardinality, opts.max_cardinality);
    // The hub is the largest relation, as in a warehouse fact table (the
    // draw still happens so the RNG stream matches the narrow generator).
    if (i == 0) node.cardinality = opts.max_cardinality * 10;
    graph.AddNode(std::move(node));
  }
  for (int i = 1; i <= satellites; ++i) {
    AddWideSimpleEdge(&graph, 0, i, rng, opts);
  }
  return graph;
}

WideHypergraph MakeWideSparseGraph(int n, double extra_edge_prob,
                                   uint64_t seed, const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 1 && n <= WideNodeSet::kMaxNodes);
  WorkloadOptions local = opts;
  local.seed = seed;
  WideHypergraph graph;
  Rng rng = AddWideRelations(&graph, n, local);
  // Random spanning tree: attach each node to a random earlier node.
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.Uniform(i));
    AddWideSimpleEdge(&graph, parent, i, rng, local);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(extra_edge_prob)) {
        AddWideSimpleEdge(&graph, i, j, rng, local);
      }
    }
  }
  return graph;
}

WideHypergraph MakeWideDegreeBoundedTree(int n, int max_degree, uint64_t seed,
                                         const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 1 && n <= WideNodeSet::kMaxNodes && max_degree >= 2);
  WorkloadOptions local = opts;
  local.seed = seed;
  WideHypergraph graph;
  Rng rng = AddWideRelations(&graph, n, local);
  std::vector<int> degree(n, 0);
  for (int i = 1; i < n; ++i) {
    // Rejection-sample an earlier node with spare capacity; at least one
    // always exists (i earlier nodes carry i - 1 tree edges, so their total
    // capacity i * max_degree exceeds 2 * (i - 1) for max_degree >= 2).
    int parent;
    do {
      parent = static_cast<int>(rng.Uniform(i));
    } while (degree[parent] >= max_degree);
    AddWideSimpleEdge(&graph, parent, i, rng, local);
    ++degree[parent];
    ++degree[i];
  }
  return graph;
}

}  // namespace dphyp
