// QDL ("query description language"): a small line-based text format for
// join-ordering problems, so examples and tools can load and save workloads.
//
//   # comment / blank lines ignored
//   relation <name> card=<double> [cols=<int>] [ndv=<d,d,...>]
//            [free=<name,name,...>] [filter=<col>:<lo>:<hi>,...]
//   predicate left=<names> right=<names> [flex=<names>] [sel=<double>]
//             [op=<operator-name>] [kind=eq|summod] [mod=<int>]
//             [refs=<name.col,...>]
//
// Relations are numbered in declaration order (this is the node order `<`
// of Def. 1). `ndv=` supplies per-column distinct counts; when any relation
// carries them, the parser builds a statistics Catalog and binds it to the
// spec, so stats-aware cardinality models can derive selectivities.
// `sel=` must be in (0, 1] — out-of-range or non-numeric values are
// structured parse errors, never silent defaults. Omitting `sel=` marks
// the predicate as derive-from-stats (Predicate::derive_selectivity): the
// product-form model uses the 0.1 default, the "stats" model derives
// 1/max(ndv) from the catalog, and the "hist" model uses MCV/histogram
// matching when the catalog was analyzed. `kind=eq` makes the payload a
// real column equality (PredicateKind::kEq) instead of the synthetic
// sum-mod conjunct; `filter=` adds inclusive scan-time range filters to a
// relation (ColumnRange). Example:
//
//   relation R0 card=1000 ndv=100
//   relation R1 card=200 ndv=40
//   relation R2 card=5000
//   predicate left=R0 right=R1            # derived: sel = 1/100 under stats
//   predicate left=R0,R1 right=R2 sel=0.002 op=leftouterjoin
#ifndef DPHYP_WORKLOAD_QDL_H_
#define DPHYP_WORKLOAD_QDL_H_

#include <string>

#include "catalog/query_spec.h"
#include "util/result.h"

namespace dphyp {

/// Parses QDL text into a validated QuerySpec (payloads filled).
Result<QuerySpec> ParseQdl(const std::string& text);

/// Reads and parses a QDL file.
Result<QuerySpec> LoadQdlFile(const std::string& path);

/// Serializes a QuerySpec to QDL text (round-trips through ParseQdl).
std::string WriteQdl(const QuerySpec& spec);

}  // namespace dphyp

#endif  // DPHYP_WORKLOAD_QDL_H_
