// QDL ("query description language"): a small line-based text format for
// join-ordering problems, so examples and tools can load and save workloads.
//
//   # comment / blank lines ignored
//   relation <name> card=<double> [cols=<int>] [free=<name,name,...>]
//   predicate left=<names> right=<names> [flex=<names>] sel=<double>
//             [op=<operator-name>] [mod=<int>] [refs=<name.col,...>]
//
// Relations are numbered in declaration order (this is the node order `<`
// of Def. 1). Example:
//
//   relation R0 card=1000
//   relation R1 card=200
//   relation R2 card=5000
//   predicate left=R0 right=R1 sel=0.01
//   predicate left=R0,R1 right=R2 sel=0.002 op=leftouterjoin
#ifndef DPHYP_WORKLOAD_QDL_H_
#define DPHYP_WORKLOAD_QDL_H_

#include <string>

#include "catalog/query_spec.h"
#include "util/result.h"

namespace dphyp {

/// Parses QDL text into a validated QuerySpec (payloads filled).
Result<QuerySpec> ParseQdl(const std::string& text);

/// Reads and parses a QDL file.
Result<QuerySpec> LoadQdlFile(const std::string& path);

/// Serializes a QuerySpec to QDL text (round-trips through ParseQdl).
std::string WriteQdl(const QuerySpec& spec);

}  // namespace dphyp

#endif  // DPHYP_WORKLOAD_QDL_H_
