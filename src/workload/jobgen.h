// JOB-style generated workload: the estimation stress test.
//
// The Join Order Benchmark's lesson (Leis et al., "How Good Are Query
// Optimizers, Really?") is that uniform/independent synthetic data hides
// estimation errors — real data is skewed and correlated, and that is
// where independence-assumption models collapse. This generator builds a
// shared pool of small tables with exactly those pathologies:
//   * column 0 is a Zipf-skewed join key (a few values dominate, so the
//     true equi-join selectivity is far above 1/ndv — the MCV x MCV match
//     gets it right, the independence rule does not),
//   * column 1 is a fixed function of column 0 (the same function on
//     every table), so a second equality predicate between two tables is
//     fully implied by the first — the correlated-predicate trap,
//   * column 2 is uniform — the range-filter column histograms interpolate.
// Queries are seeded random chain joins over the pool with derived
// (selectivity-free) equality predicates, optional correlated second
// predicates, and optional range filters.
//
// Two catalogs come with the workload so benches can ablate the
// statistics axis alone: `naive_catalog` holds exact row counts, ndv and
// bounds but no distributions (what "stats" consumes); `full_catalog`
// additionally holds histograms, MCV lists, and the pairwise correlation
// overrides (what "hist" consumes). Both describe the same data.
#ifndef DPHYP_WORKLOAD_JOBGEN_H_
#define DPHYP_WORKLOAD_JOBGEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/query_spec.h"
#include "exec/dataset.h"

namespace dphyp {

struct JobGenOptions {
  uint64_t seed = 0x0b90b9eull;
  /// Pool shape. Sizes are deliberately modest: the grader executes every
  /// plan with the tuple-at-a-time reference executor, and Zipf-matched
  /// equi-joins fan out by roughly rows/H(domain, s) per extra relation —
  /// at 96 rows that is ~20x per join, so 4-relation chains stay around
  /// 10^5 intermediate tuples while 6-relation chains over 240-row tables
  /// would materialize 10^8+.
  int num_tables = 6;
  int rows_per_table = 96;
  /// Zipf exponent of the join-key distribution (1.0+ is heavy skew).
  double zipf_s = 1.1;
  /// Join keys are drawn from [0, domain).
  int64_t domain = 32;
  /// Query mix.
  int num_queries = 10;
  int min_relations = 3;
  int max_relations = 4;
  /// Probability that a query adds a range filter on one relation.
  double range_filter_prob = 0.5;
  /// Probability that a joined pair also gets the correlated second
  /// equality predicate (column 1 = column 1).
  double correlated_pair_prob = 0.5;
};

/// One generated query: the spec plus which pool table each relation is.
struct JobQuery {
  QuerySpec spec;
  std::vector<int> pool_tables;
};

struct JobWorkload {
  JobGenOptions options;
  /// The shared table pool (index i is table "J<i>").
  std::vector<ExecRelation> pool;
  std::vector<std::string> pool_names;
  /// Row counts + exact ndv/min/max, no distributions. Queries are bound
  /// to this catalog (spec.catalog), so "stats" works out of the box.
  std::shared_ptr<Catalog> naive_catalog;
  /// naive_catalog plus histograms, MCVs and correlation overrides — pass
  /// it explicitly to CardinalityModelInputs::catalog for "hist".
  std::shared_ptr<Catalog> full_catalog;
  std::vector<JobQuery> queries;
};

/// Generates the workload deterministically from `opts.seed`.
JobWorkload GenerateJobWorkload(const JobGenOptions& opts);

/// Materializes the dataset of one query: its relations' pool tables, in
/// the query's relation order (Dataset table i <-> spec relation i).
Dataset DatasetForJobQuery(const JobWorkload& workload, int query_index);

}  // namespace dphyp

#endif  // DPHYP_WORKLOAD_JOBGEN_H_
