#include "workload/qdl.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "cost/stats_model.h"
#include "util/string_util.h"

namespace dphyp {

namespace {

/// One "key=value" or bare token on a line.
struct Token {
  std::string key;    // empty for bare tokens
  std::string value;
};

std::vector<Token> Tokenize(std::string_view line) {
  std::vector<Token> tokens;
  for (const std::string& piece : SplitAndTrim(line, ' ')) {
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      tokens.push_back({"", piece});
    } else {
      tokens.push_back({piece.substr(0, eq), piece.substr(eq + 1)});
    }
  }
  return tokens;
}

class Parser {
 public:
  Result<QuerySpec> Parse(const std::string& text) {
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    while (std::getline(stream, line)) {
      ++line_no;
      std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      std::vector<Token> tokens = Tokenize(trimmed);
      if (tokens.empty()) continue;
      const std::string& kind = tokens[0].value;
      Result<bool> ok =
          kind == "relation"    ? ParseRelation(tokens)
          : kind == "predicate" ? ParsePredicate(tokens)
                                : Result<bool>(Err("unknown directive '" + kind + "'"));
      if (!ok.ok()) {
        return Err("line " + std::to_string(line_no) + ": " +
                   ok.error().message);
      }
    }
    // Resolve free-table names now that all relations are known.
    for (auto& [rel, names] : pending_free_) {
      for (const std::string& name : names) {
        Result<int> id = Lookup(name);
        if (!id.ok()) return id.error();
        spec_.relations[rel].free_tables |= NodeSet::Single(id.value());
      }
    }
    // Any ndv= attribute means the workload carries statistics: build the
    // catalog (row counts for every relation, column stats where given)
    // and bind it, so stats-aware models can derive selectivities.
    if (have_stats_) {
      auto catalog = std::make_shared<Catalog>();
      for (size_t i = 0; i < spec_.relations.size(); ++i) {
        TableStats stats;
        stats.name = spec_.relations[i].name;
        stats.row_count = spec_.relations[i].cardinality;
        if (i < pending_ndvs_.size()) {
          for (double ndv : pending_ndvs_[i]) {
            stats.columns.push_back(ColumnStats{ndv, 0.0, 0.0});
          }
        }
        catalog->AddTable(std::move(stats));
      }
      spec_.BindCatalog(std::move(catalog));
    }
    Result<bool> valid = spec_.Validate();
    if (!valid.ok()) return valid.error();
    // Executable payloads. A user-written mod= is authoritative: fill the
    // default refs here so FillDefaultPayloads (which derives a modulus
    // from the selectivity) cannot overwrite it. Derived predicates with
    // catalog stats get a payload matching the derivation (modulus ~=
    // max(ndv)), so executed actuals line up with what the stats model
    // predicts; predicates whose columns carry no ndv fall through to the
    // selectivity-based default (StatsDerivedSelectivity returns the
    // stored selectivity unchanged when it has nothing to derive from).
    for (size_t i = 0; i < spec_.predicates.size(); ++i) {
      Predicate& p = spec_.predicates[i];
      if (!p.refs.empty()) continue;
      // Equality payloads carry no modulus; FillDefaultPayloads adds refs.
      if (p.kind == PredicateKind::kEq) continue;
      if (explicit_mod_[i]) {
        for (int t : p.AllTables()) p.refs.push_back(ColumnRef{t, 0});
        continue;
      }
      if (spec_.catalog == nullptr || !p.derive_selectivity) continue;
      double sel = StatsDerivedSelectivity(p, spec_, spec_.catalog.get());
      if (sel >= 1.0 || sel == p.selectivity) continue;  // nothing derived
      for (int t : p.AllTables()) p.refs.push_back(ColumnRef{t, 0});
      p.modulus = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(1.0 / sel)));
    }
    spec_.FillDefaultPayloads();
    return std::move(spec_);
  }

 private:
  Result<int> Lookup(const std::string& name) const {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) return Err("unknown relation '" + name + "'");
    return it->second;
  }

  Result<NodeSet> LookupSet(const std::string& csv) const {
    NodeSet set;
    for (const std::string& name : SplitAndTrim(csv, ',')) {
      Result<int> id = Lookup(name);
      if (!id.ok()) return id.error();
      set |= NodeSet::Single(id.value());
    }
    return set;
  }

  Result<bool> ParseRelation(const std::vector<Token>& tokens) {
    if (tokens.size() < 2 || !tokens[1].key.empty()) {
      return Err("relation needs a name");
    }
    const std::string& name = tokens[1].value;
    if (by_name_.count(name)) return Err("duplicate relation '" + name + "'");
    RelationInfo rel;
    rel.name = name;
    bool have_card = false;
    std::vector<double> ndvs;
    for (size_t i = 2; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.key == "card") {
        rel.cardinality = std::atof(t.value.c_str());
        have_card = true;
      } else if (t.key == "cols") {
        rel.num_columns = std::atoi(t.value.c_str());
      } else if (t.key == "ndv") {
        for (const std::string& v : SplitAndTrim(t.value, ',')) {
          double ndv = std::atof(v.c_str());
          if (!(ndv > 0.0)) {
            return Err("relation '" + name + "': ndv values must be > 0, got '" +
                       v + "'");
          }
          ndvs.push_back(ndv);
        }
      } else if (t.key == "free") {
        pending_free_.emplace_back(spec_.NumRelations(),
                                   SplitAndTrim(t.value, ','));
      } else if (t.key == "filter") {
        for (const std::string& piece : SplitAndTrim(t.value, ',')) {
          std::vector<std::string> parts = SplitAndTrim(piece, ':');
          if (parts.size() != 3) {
            return Err("filter '" + piece + "' must be <col>:<lo>:<hi>");
          }
          ColumnRange range;
          range.column = std::atoi(parts[0].c_str());
          range.lo = std::atoll(parts[1].c_str());
          range.hi = std::atoll(parts[2].c_str());
          rel.filters.push_back(range);
        }
      } else {
        return Err("unknown relation attribute '" + t.key + "'");
      }
    }
    if (!have_card) return Err("relation '" + name + "' needs card=");
    if (!ndvs.empty()) have_stats_ = true;
    pending_ndvs_.resize(spec_.NumRelations() + 1);
    pending_ndvs_[spec_.NumRelations()] = std::move(ndvs);
    by_name_[name] = spec_.NumRelations();
    spec_.relations.push_back(std::move(rel));
    return true;
  }

  Result<bool> ParsePredicate(const std::vector<Token>& tokens) {
    Predicate pred;
    bool have_left = false, have_right = false, have_sel = false;
    bool have_mod = false;
    for (size_t i = 1; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.key == "left" || t.key == "right" || t.key == "flex") {
        Result<NodeSet> set = LookupSet(t.value);
        if (!set.ok()) return set.error();
        if (t.key == "left") {
          pred.left = set.value();
          have_left = true;
        } else if (t.key == "right") {
          pred.right = set.value();
          have_right = true;
        } else {
          pred.flex = set.value();
        }
      } else if (t.key == "sel") {
        // Hard validation, not silent defaulting: a selectivity the user
        // wrote must parse and lie in (0, 1], or the query is rejected
        // with a structured error naming the offending value.
        char* end = nullptr;
        double sel = std::strtod(t.value.c_str(), &end);
        if (end == t.value.c_str() || *end != '\0') {
          return Err("sel= must be a number, got '" + t.value + "'");
        }
        if (!(sel > 0.0) || sel > 1.0) {
          return Err("sel= must be in (0, 1], got '" + t.value + "'");
        }
        pred.selectivity = sel;
        have_sel = true;
      } else if (t.key == "op") {
        OpType op;
        if (!ParseOpName(t.value, &op)) {
          return Err("unknown operator '" + t.value + "'");
        }
        pred.op = op;
      } else if (t.key == "kind") {
        if (t.value == "eq") {
          pred.kind = PredicateKind::kEq;
        } else if (t.value == "summod") {
          pred.kind = PredicateKind::kSumMod;
        } else {
          return Err("kind= must be 'eq' or 'summod', got '" + t.value + "'");
        }
      } else if (t.key == "mod") {
        pred.modulus = std::atoll(t.value.c_str());
        have_mod = true;
      } else if (t.key == "refs") {
        for (const std::string& ref : SplitAndTrim(t.value, ',')) {
          size_t dot = ref.find('.');
          if (dot == std::string::npos) {
            return Err("ref '" + ref + "' must be <relation>.<column>");
          }
          Result<int> id = Lookup(ref.substr(0, dot));
          if (!id.ok()) return id.error();
          pred.refs.push_back(
              ColumnRef{id.value(), std::atoi(ref.c_str() + dot + 1)});
        }
      } else {
        return Err("unknown predicate attribute '" + t.key + "'");
      }
    }
    if (!have_left || !have_right) return Err("predicate needs left= and right=");
    // Omitted sel= means "derive from catalog stats": the stored value
    // stays at the spec default (used by the product-form model), and
    // stats-aware models derive 1/max(ndv).
    pred.derive_selectivity = !have_sel;
    explicit_mod_.push_back(have_mod);
    spec_.predicates.push_back(std::move(pred));
    return true;
  }

  QuerySpec spec_;
  std::map<std::string, int> by_name_;
  std::vector<std::pair<int, std::vector<std::string>>> pending_free_;
  std::vector<std::vector<double>> pending_ndvs_;
  std::vector<bool> explicit_mod_;
  bool have_stats_ = false;
};

std::string NamesOf(const QuerySpec& spec, NodeSet set) {
  std::string out;
  for (int v : set) {
    if (!out.empty()) out += ",";
    out += spec.relations[v].name;
  }
  return out;
}

}  // namespace

Result<QuerySpec> ParseQdl(const std::string& text) {
  Parser parser;
  return parser.Parse(text);
}

Result<QuerySpec> LoadQdlFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Err("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseQdl(buffer.str());
}

std::string WriteQdl(const QuerySpec& spec) {
  std::string out = "# dphyp query description\n";
  for (const RelationInfo& rel : spec.relations) {
    out += "relation " + rel.name + " card=" + FormatDouble(rel.cardinality);
    if (rel.num_columns != 2) out += " cols=" + std::to_string(rel.num_columns);
    if (spec.catalog != nullptr) {
      if (auto stats = spec.catalog->FindTable(rel.name);
          stats.has_value() && !stats->columns.empty()) {
        out += " ndv=";
        for (size_t i = 0; i < stats->columns.size(); ++i) {
          if (i) out += ",";
          out += FormatDouble(stats->columns[i].distinct_count);
        }
      }
    }
    if (!rel.free_tables.Empty()) out += " free=" + NamesOf(spec, rel.free_tables);
    if (!rel.filters.empty()) {
      out += " filter=";
      for (size_t i = 0; i < rel.filters.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(rel.filters[i].column) + ":" +
               std::to_string(rel.filters[i].lo) + ":" +
               std::to_string(rel.filters[i].hi);
      }
    }
    out += "\n";
  }
  for (const Predicate& p : spec.predicates) {
    out += "predicate left=" + NamesOf(spec, p.left) +
           " right=" + NamesOf(spec, p.right);
    if (!p.flex.Empty()) out += " flex=" + NamesOf(spec, p.flex);
    if (!p.derive_selectivity) out += " sel=" + FormatDouble(p.selectivity);
    if (p.op != OpType::kJoin) out += " op=" + std::string(OpName(p.op));
    if (p.kind == PredicateKind::kEq) out += " kind=eq";
    if (p.kind != PredicateKind::kEq && p.modulus != 2) {
      out += " mod=" + std::to_string(p.modulus);
    }
    if (!p.refs.empty()) {
      out += " refs=";
      for (size_t i = 0; i < p.refs.size(); ++i) {
        if (i) out += ",";
        out += spec.relations[p.refs[i].table].name + "." +
               std::to_string(p.refs[i].column);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace dphyp
