#include "workload/analytics.h"

namespace dphyp {

namespace {

/// Shared schema: lineorder fact plus dimensions. Returns the spec with
/// relations only; queries add their predicates.
struct Schema {
  QuerySpec spec;
  int lineorder, date, customer, supplier, part;
};

Schema MakeSchema() {
  Schema s;
  s.lineorder = s.spec.AddRelation("lineorder", 6'000'000);
  s.date = s.spec.AddRelation("date", 2'556);
  s.customer = s.spec.AddRelation("customer", 30'000);
  s.supplier = s.spec.AddRelation("supplier", 2'000);
  s.part = s.spec.AddRelation("part", 200'000);
  return s;
}

}  // namespace

std::vector<AnalyticsQuery> AnalyticsQueries() {
  std::vector<AnalyticsQuery> queries;

  {
    // Q1: revenue per year — fact x date only, the date selection folded
    // into an effective cardinality of one year.
    QuerySpec spec;
    spec.AddRelation("lineorder", 6'000'000);
    spec.AddRelation("date", 365);
    spec.AddSimplePredicate(0, 1, 1.0 / 2'556);
    spec.FillDefaultPayloads();
    queries.push_back({"Q1", "fact-date slice", std::move(spec)});
  }
  {
    // Q2: three-dimension star.
    Schema s = MakeSchema();
    s.spec.AddSimplePredicate(s.lineorder, s.date, 1.0 / 2'556);
    s.spec.AddSimplePredicate(s.lineorder, s.supplier, 1.0 / 2'000);
    s.spec.AddSimplePredicate(s.lineorder, s.part, 1.0 / 200'000);
    s.spec.AddSimplePredicate(s.lineorder, s.customer, 1.0 / 30'000);
    s.spec.FillDefaultPayloads();
    queries.push_back({"Q2", "four-dimension star", std::move(s.spec)});
  }
  {
    // Q3: star with a customer-supplier region correlation — a complex
    // predicate over two dimensions (same-region test), i.e. a hyperedge
    // anchored at {customer} x {supplier} … here made ternary by including
    // the part's brand group on the right to force a true hypernode.
    Schema s = MakeSchema();
    s.spec.AddSimplePredicate(s.lineorder, s.date, 1.0 / 2'556);
    s.spec.AddSimplePredicate(s.lineorder, s.customer, 1.0 / 30'000);
    s.spec.AddSimplePredicate(s.lineorder, s.supplier, 1.0 / 2'000);
    s.spec.AddSimplePredicate(s.lineorder, s.part, 1.0 / 200'000);
    s.spec.AddComplexPredicate(
        NodeSet::Single(s.customer),
        NodeSet::Single(s.supplier) | NodeSet::Single(s.part), 0.04);
    s.spec.FillDefaultPayloads();
    queries.push_back(
        {"Q3", "star + cross-dimension hyperedge", std::move(s.spec)});
  }
  {
    // Q4: star with an optional dimension (LOJ to promotion-like part) and
    // an anti-joined denylist folded in as a non-inner edge.
    Schema s = MakeSchema();
    s.spec.AddSimplePredicate(s.lineorder, s.date, 1.0 / 2'556);
    s.spec.AddSimplePredicate(s.lineorder, s.customer, 1.0 / 30'000);
    s.spec.AddSimplePredicate(s.lineorder, s.part, 1.0 / 200'000,
                              OpType::kLeftOuterjoin);
    s.spec.AddSimplePredicate(s.lineorder, s.supplier, 1.0 / 2'000,
                              OpType::kLeftAntijoin);
    s.spec.FillDefaultPayloads();
    queries.push_back(
        {"Q4", "star with outer join and antijoin edges", std::move(s.spec)});
  }
  {
    // Q5: lateral flavour — a per-customer top-k subquery as a table
    // function over customer.
    QuerySpec spec;
    spec.AddRelation("lineorder", 6'000'000);
    spec.AddRelation("customer", 30'000);
    RelationInfo topk;
    topk.name = "recent_orders";  // lateral over customer
    topk.cardinality = 10;
    topk.free_tables = NodeSet::Single(1);
    spec.relations.push_back(topk);
    spec.AddSimplePredicate(0, 1, 1.0 / 30'000);
    spec.AddSimplePredicate(1, 2, 0.5);
    spec.FillDefaultPayloads();
    queries.push_back({"Q5", "lateral per-customer subquery", std::move(spec)});
  }
  {
    // Q6: the stress case — all dimensions plus two hyperedges, one of
    // them generalized (the part group may be checked on either side).
    Schema s = MakeSchema();
    s.spec.AddSimplePredicate(s.lineorder, s.date, 1.0 / 2'556);
    s.spec.AddSimplePredicate(s.lineorder, s.customer, 1.0 / 30'000);
    s.spec.AddSimplePredicate(s.lineorder, s.supplier, 1.0 / 2'000);
    s.spec.AddSimplePredicate(s.lineorder, s.part, 1.0 / 200'000);
    s.spec.AddComplexPredicate(
        NodeSet::Single(s.customer), NodeSet::Single(s.supplier), 0.04,
        OpType::kJoin, /*flex=*/NodeSet::Single(s.part));
    s.spec.AddComplexPredicate(
        NodeSet::Single(s.date) | NodeSet::Single(s.supplier),
        NodeSet::Single(s.part), 0.01);
    s.spec.FillDefaultPayloads();
    queries.push_back({"Q6", "two hyperedges, one generalized", std::move(s.spec)});
  }
  return queries;
}

}  // namespace dphyp
