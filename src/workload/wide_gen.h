// Wide (> 64 relation) workload generators.
//
// QuerySpec and the serving tier stay narrow (predicates are one-word
// NodeSets), so wide graphs are built directly as BasicHypergraph values —
// the same shapes, cardinality ranges, and seeded draws as the narrow
// generators in workload/generators.h, just past the one-word fit. The
// wide fuzz tier (tests/test_fuzz.cc, label `wide`) and the wide bench
// sweep (bench/run_all.cc) are the consumers.
//
// Determinism matches the narrow generators: the same (shape, n, seed,
// options) always produces the identical graph, so wide plan costs are
// reproducible across runs and machines.
#ifndef DPHYP_WORKLOAD_WIDE_GEN_H_
#define DPHYP_WORKLOAD_WIDE_GEN_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "workload/generators.h"

namespace dphyp {

/// Chain R0 - R1 - ... - R(n-1) at wide width. Tractable exactly at any n
/// (quadratic connected-subgraph count); the wide acceptance test runs a
/// 72-relation instance through the exact path.
WideHypergraph MakeWideChainGraph(int n, const WorkloadOptions& opts = {});

/// Cycle: chain plus the closing edge (R(n-1), R0).
WideHypergraph MakeWideCycleGraph(int n, const WorkloadOptions& opts = {});

/// Star: hub R0 (fact-table sized, as in the narrow generator) with edges
/// to satellites R1..Rk. Exact DP is hopeless past ~20 satellites (2^k
/// subgraphs) — stars are the beyond-exact tier's territory.
WideHypergraph MakeWideStarGraph(int satellites,
                                 const WorkloadOptions& opts = {});

/// Random connected sparse graph: a seeded random spanning tree plus each
/// extra edge with probability `extra_edge_prob`. Spanning-tree hubs push
/// the shape past the exact frontier, so this is the beyond-exact tier's
/// wide workload (idp-k / anneal vs. the GOO floor).
WideHypergraph MakeWideSparseGraph(int n, double extra_edge_prob,
                                   uint64_t seed,
                                   const WorkloadOptions& opts = {});

/// Random spanning tree with every node's degree capped at `max_degree`
/// (>= 2): each node attaches to a seeded-random earlier node that still
/// has capacity. The sparsest connected graph (n - 1 edges) with scrambled
/// structure; at max_degree = 2 it is a randomly-threaded path whose
/// quadratic subgraph count keeps exact DP tractable at any width — the
/// 80-relation exact acceptance shape.
WideHypergraph MakeWideDegreeBoundedTree(int n, int max_degree, uint64_t seed,
                                         const WorkloadOptions& opts = {});

}  // namespace dphyp

#endif  // DPHYP_WORKLOAD_WIDE_GEN_H_
