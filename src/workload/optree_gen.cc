#include "workload/optree_gen.h"

#include "util/check.h"
#include "util/rng.h"

namespace dphyp {

namespace {

void AddRelationsToTree(OperatorTree* tree, int n, Rng& rng,
                        const WorkloadOptions& opts) {
  for (int i = 0; i < n; ++i) {
    RelationInfo rel;
    rel.name = "R" + std::to_string(i);
    rel.cardinality = rng.UniformDouble(opts.min_cardinality, opts.max_cardinality);
    tree->relations.push_back(std::move(rel));
  }
}

}  // namespace

OperatorTree MakeStarAntijoinTree(int satellites, int num_antijoins,
                                  const WorkloadOptions& opts) {
  DPHYP_CHECK(satellites >= 1);
  DPHYP_CHECK(num_antijoins >= 0 && num_antijoins <= satellites);
  OperatorTree tree;
  Rng rng(opts.seed);
  AddRelationsToTree(&tree, satellites + 1, rng, opts);
  tree.relations[0].cardinality = opts.max_cardinality * 10;  // fact table

  int current = tree.AddLeaf(0);
  for (int i = 1; i <= satellites; ++i) {
    int leaf = tree.AddLeaf(i);
    int pred = tree.AddPredicate(
        NodeSet::Single(0) | NodeSet::Single(i),
        rng.UniformDouble(opts.min_selectivity, opts.max_selectivity));
    // Topmost `num_antijoins` operators are antijoins.
    OpType op = (i > satellites - num_antijoins) ? OpType::kLeftAntijoin
                                                 : OpType::kJoin;
    current = tree.AddOp(op, current, leaf, {pred});
  }
  tree.root = current;
  Result<bool> ok = tree.Finalize();
  DPHYP_CHECK_MSG(ok.ok(), ok.error().message.c_str());
  tree.FillDefaultPayloads();
  return tree;
}

OperatorTree MakeCycleOuterjoinTree(int n, int num_outerjoins,
                                    const WorkloadOptions& opts) {
  DPHYP_CHECK(n >= 3);
  DPHYP_CHECK(num_outerjoins >= 0 && num_outerjoins <= n - 1);
  OperatorTree tree;
  Rng rng(opts.seed);
  AddRelationsToTree(&tree, n, rng, opts);

  int current = tree.AddLeaf(0);
  for (int i = 1; i < n; ++i) {
    int leaf = tree.AddLeaf(i);
    std::vector<int> preds;
    preds.push_back(tree.AddPredicate(
        NodeSet::Single(i - 1) | NodeSet::Single(i),
        rng.UniformDouble(opts.min_selectivity, opts.max_selectivity)));
    if (i == n - 1) {
      // Closing predicate of the cycle, evaluated at the last operator.
      preds.push_back(tree.AddPredicate(
          NodeSet::Single(0) | NodeSet::Single(n - 1),
          rng.UniformDouble(opts.min_selectivity, opts.max_selectivity)));
    }
    // Bottommost operators are the outer joins (see header).
    OpType op = (i <= num_outerjoins) ? OpType::kLeftOuterjoin : OpType::kJoin;
    current = tree.AddOp(op, current, leaf, preds);
  }
  tree.root = current;
  Result<bool> ok = tree.Finalize();
  DPHYP_CHECK_MSG(ok.ok(), ok.error().message.c_str());
  tree.FillDefaultPayloads();
  return tree;
}

namespace {

struct SubtreeInfo {
  int node = -1;
  /// Tables whose columns survive to this subtree's output (semijoins,
  /// antijoins and nestjoins hide their right side).
  NodeSet visible;
};

/// Picks a uniformly random element of a non-empty set.
int PickFrom(NodeSet set, Rng& rng) {
  int idx = static_cast<int>(rng.Uniform(set.Count()));
  for (int v : set) {
    if (idx-- == 0) return v;
  }
  DPHYP_CHECK(false);
  return -1;
}

/// Recursively builds a random tree over the contiguous relation range
/// [lo, hi). Predicates and laterals reference only *visible* tables so the
/// tree passes validation.
SubtreeInfo BuildRandomSubtree(OperatorTree* tree, int lo, int hi, Rng& rng,
                               const RandomTreeOptions& opts) {
  if (hi - lo == 1) {
    return SubtreeInfo{tree->AddLeaf(lo), NodeSet::Single(lo)};
  }
  // Random split keeps leaf order ascending (Sec. 5.4).
  int split = lo + 1 + static_cast<int>(rng.Uniform(hi - lo - 1));
  SubtreeInfo left = BuildRandomSubtree(tree, lo, split, rng, opts);
  SubtreeInfo right = BuildRandomSubtree(tree, split, hi, rng, opts);

  // Predicate over one visible table from each side, biased toward the
  // boundary (chain-like queries).
  int lt = rng.Bernoulli(0.7) ? left.visible.Max() : PickFrom(left.visible, rng);
  int rt = rng.Bernoulli(0.7) ? right.visible.Min() : PickFrom(right.visible, rng);
  const WorkloadOptions& w = opts.workload;
  std::vector<int> preds;
  preds.push_back(tree->AddPredicate(
      NodeSet::Single(lt) | NodeSet::Single(rt),
      rng.UniformDouble(w.min_selectivity, w.max_selectivity)));
  if (rng.Bernoulli(opts.extra_conjunct_prob)) {
    preds.push_back(tree->AddPredicate(
        NodeSet::Single(PickFrom(left.visible, rng)) |
            NodeSet::Single(PickFrom(right.visible, rng)),
        rng.UniformDouble(w.min_selectivity, w.max_selectivity)));
  }

  // Lateral right leaf? Only for single-relation right sides.
  bool lateral = false;
  if (hi - split == 1 && rng.Bernoulli(opts.lateral_prob)) {
    lateral = true;
    RelationInfo& rel = tree->relations[split];
    rel.free_tables = NodeSet::Single(PickFrom(left.visible, rng));
    rel.name = "F" + std::to_string(split);  // mark table functions
  }

  OpType op = OpType::kJoin;
  if (rng.Bernoulli(opts.non_inner_prob)) {
    static const OpType kChoices[] = {
        OpType::kLeftSemijoin, OpType::kLeftAntijoin, OpType::kLeftOuterjoin,
        OpType::kFullOuterjoin, OpType::kLeftNestjoin};
    op = kChoices[rng.Uniform(5)];
    // No dependent full outer join exists; laterals exclude it.
    if (lateral && op == OpType::kFullOuterjoin) op = OpType::kLeftOuterjoin;
  }
  NodeSet agg_tables;
  if (op == OpType::kLeftNestjoin) {
    agg_tables = NodeSet::Single(PickFrom(right.visible, rng));
  }
  if (lateral) op = DependentVariant(op);
  SubtreeInfo info;
  info.node = tree->AddOp(op, left.node, right.node, preds, agg_tables);
  info.visible = LeftOnlyOutput(op) ? left.visible : left.visible | right.visible;
  return info;
}

}  // namespace

SyntheticNonInnerWorkload MakeStarAntijoinWorkload(int satellites,
                                                   int num_antijoins,
                                                   const WorkloadOptions& opts) {
  DPHYP_CHECK(satellites >= 1);
  DPHYP_CHECK(num_antijoins >= 0 && num_antijoins <= satellites);
  SyntheticNonInnerWorkload out;
  Rng rng(opts.seed);
  const int n = satellites;            // satellites 1..n, hub 0
  const int first_anti = n - num_antijoins + 1;

  for (int i = 0; i <= n; ++i) {
    HypergraphNode node;
    node.name = "R" + std::to_string(i);
    node.cardinality =
        i == 0 ? opts.max_cardinality * 10
               : rng.UniformDouble(opts.min_cardinality, opts.max_cardinality);
    out.graph.AddNode(node);
    out.ses_graph.AddNode(node);
  }

  for (int i = 1; i <= n; ++i) {
    const double sel =
        rng.UniformDouble(opts.min_selectivity, opts.max_selectivity);
    const bool anti = i >= first_anti;
    // SES edge: the plain star shape (hub predicates). The generate-and-test
    // mode therefore enumerates the *unrestricted* star search space and
    // pays for every candidate the TES constraints discard — the exact
    // inefficiency Fig. 8a quantifies.
    Hyperedge ses;
    ses.left = NodeSet::Single(0);
    ses.right = NodeSet::Single(i);
    ses.selectivity = sel;
    ses.op = anti ? OpType::kLeftAntijoin : OpType::kJoin;
    ses.predicate_id = i - 1;
    out.ses_graph.AddEdge(ses);

    // Hypernode edge: TES of an antijoin accumulates the whole antijoin
    // block built so far (mutual conflicts), i.e. l = {0, first..i-1}.
    Hyperedge hyper = ses;
    if (anti) {
      NodeSet l = NodeSet::Single(0);
      for (int j = first_anti; j < i; ++j) l |= NodeSet::Single(j);
      hyper.left = l;
    }
    out.graph.AddEdge(hyper);
    out.tes_constraints.push_back(TesConstraint{hyper.left, hyper.right});
  }
  return out;
}

OperatorTree MakeRandomOperatorTree(int n, uint64_t seed,
                                    const RandomTreeOptions& opts) {
  DPHYP_CHECK(n >= 2);
  OperatorTree tree;
  Rng rng(seed);
  AddRelationsToTree(&tree, n, rng, opts.workload);
  tree.root = BuildRandomSubtree(&tree, 0, n, rng, opts).node;
  Result<bool> ok = tree.Finalize();
  DPHYP_CHECK_MSG(ok.ok(), ok.error().message.c_str());
  tree.FillDefaultPayloads();
  return tree;
}

}  // namespace dphyp
