// Operator-tree workloads for the non-inner-join experiments (Sec. 5.8) and
// for randomized semantic property testing.
#ifndef DPHYP_WORKLOAD_OPTREE_GEN_H_
#define DPHYP_WORKLOAD_OPTREE_GEN_H_

#include "core/optimizer.h"
#include "reorder/operator_tree.h"
#include "workload/generators.h"

namespace dphyp {

/// Fig. 8a workload: a left-deep operator tree over a star query with
/// 1 + `satellites` relations (hub R0), predicate i joining the hub with
/// satellite Ri. The topmost `num_antijoins` operators are left antijoins,
/// the rest inner joins.
OperatorTree MakeStarAntijoinTree(int satellites, int num_antijoins,
                                  const WorkloadOptions& opts = {});

/// Fig. 8b workload: a left-deep operator tree over a cycle query with n
/// relations; operator i joins the prefix with R(i) via predicate
/// (R(i-1), R(i)); the closing predicate (R0, R(n-1)) is an extra conjunct
/// of the final operator. The bottommost `num_outerjoins` operators are
/// left outer joins, the rest inner joins — inner joins above outer joins
/// conflict (Fig. 9 row 4.48), so the search space first shrinks with the
/// outer-join count and then grows again once the (mutually associative,
/// 4.46) outer joins dominate: exactly the curve shape of Fig. 8b.
OperatorTree MakeCycleOuterjoinTree(int n, int num_outerjoins,
                                    const WorkloadOptions& opts = {});

/// Fig. 8a workload, built directly as (hypergraph, SES graph, TES
/// constraints). The paper under-specifies the antijoin predicates: with
/// hub-only predicates its own conflict rules leave all antijoins freely
/// reorderable (Case L1 / Theorem 1 eq. 2) and the search space would not
/// shrink. We therefore chain each antijoin's predicate to the previous
/// antijoin's satellite — the structure produced by unnesting nested
/// NOT EXISTS subqueries — which makes the antijoin block mutually
/// conflicting and reproduces the experiment: a TES prefix per antijoin,
/// search space collapsing from O(n * 2^n) towards O(n) as
/// `num_antijoins` grows. This is a pure timing workload (never executed).
struct SyntheticNonInnerWorkload {
  Hypergraph graph;      ///< hypernode form (Sec. 5.7)
  Hypergraph ses_graph;  ///< SES form for generate-and-test (Sec. 5.8)
  std::vector<TesConstraint> tes_constraints;  ///< parallel to ses_graph
};
SyntheticNonInnerWorkload MakeStarAntijoinWorkload(
    int satellites, int num_antijoins, const WorkloadOptions& opts = {});

/// Knobs for the random tree generator.
struct RandomTreeOptions {
  WorkloadOptions workload;
  /// Probability that an operator is non-inner (uniform over semi, anti,
  /// left outer, full outer, nestjoin where legal).
  double non_inner_prob = 0.5;
  /// Probability that a right-leaf becomes a lateral (table-function) leaf
  /// referencing a table from the left subtree.
  double lateral_prob = 0.15;
  /// Probability of a second conjunct on an operator.
  double extra_conjunct_prob = 0.2;
};

/// Random valid operator tree over n relations: random shape (contiguous
/// splits keep the Sec. 5.4 left-to-right numbering), random operators,
/// optional lateral leaves under dependent operators. Always passes
/// OperatorTree::Finalize().
OperatorTree MakeRandomOperatorTree(int n, uint64_t seed,
                                    const RandomTreeOptions& opts = {});

}  // namespace dphyp

#endif  // DPHYP_WORKLOAD_OPTREE_GEN_H_
