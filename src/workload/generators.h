// Workload generators for the paper's evaluation (Sec. 4) and for property
// testing.
//
// The Sec. 4 construction: start from a chain/cycle/star/clique graph, add
// one big hyperedge whose hypernodes each cover half of the relations
// (Fig. 4), then repeatedly *split* hyperedges — each hypernode is halved
// and the halves re-paired — until only simple edges remain. Splits are
// applied FIFO over the non-simple edges, which reproduces the paper's
// split counts exactly (cycle n=8: splits 0..3; n=16: splits 0..7; star
// with 8 satellites: 0..3; 16 satellites: 0..7).
//
// Pairing rule (matches the published G0..G3 sequence for the 8-cycle):
// when the halves still contain >= 2 nodes they are re-paired crosswise
// (first-with-second), producing e.g. ({R0,R1},{R6,R7}) and
// ({R2,R3},{R4,R5}); singleton halves are paired index-aligned, producing
// ({R0},{R6}), ({R1},{R7}) — crossing singletons would duplicate existing
// cycle edges (e.g. R0–R7).
//
// Cardinalities and selectivities are not specified by the paper (they do
// not affect enumeration time); we draw them deterministically from a
// seeded RNG so every run is reproducible.
#ifndef DPHYP_WORKLOAD_GENERATORS_H_
#define DPHYP_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "catalog/query_spec.h"
#include "util/rng.h"

namespace dphyp {

/// Knobs for all generators.
struct WorkloadOptions {
  uint64_t seed = 42;
  double min_cardinality = 100.0;
  double max_cardinality = 10000.0;
  double min_selectivity = 0.001;
  double max_selectivity = 0.2;
};

/// Chain R0 - R1 - ... - R(n-1).
QuerySpec MakeChainQuery(int n, const WorkloadOptions& opts = {});

/// Cycle: chain plus the closing edge (R(n-1), R0).
QuerySpec MakeCycleQuery(int n, const WorkloadOptions& opts = {});

/// Star: hub R0 with edges to satellites R1..Rk (k = `satellites`).
QuerySpec MakeStarQuery(int satellites, const WorkloadOptions& opts = {});

/// Clique: every pair connected.
QuerySpec MakeCliqueQuery(int n, const WorkloadOptions& opts = {});

/// Fig. 4a: cycle over n relations (n a multiple of 4) plus the hyperedge
/// ({R0..R(n/2-1)}, {R(n/2)..R(n-1)}), with `splits` FIFO split operations
/// applied. splits must be in [0, n/2 - 1].
QuerySpec MakeCycleHypergraphQuery(int n, int splits,
                                   const WorkloadOptions& opts = {});

/// Fig. 4b: star with `satellites` satellites (a multiple of 4) plus the
/// hyperedge over the two satellite halves, with `splits` split operations.
/// splits must be in [0, satellites/2 - 1].
QuerySpec MakeStarHypergraphQuery(int satellites, int splits,
                                  const WorkloadOptions& opts = {});

/// Maximum number of split operations for an initial hyperedge whose sides
/// contain `side` relations each (side a power of two): side - 1.
int MaxHyperedgeSplits(int side);

/// Random connected simple graph: a random spanning tree plus each extra
/// edge with probability `extra_edge_prob`.
QuerySpec MakeRandomGraphQuery(int n, double extra_edge_prob, uint64_t seed,
                               const WorkloadOptions& opts = {});

/// Random connected hypergraph: random spanning tree plus
/// `num_complex_edges` random hyperedges with side sizes in [1, 3]
/// (at least one side with >= 2 nodes).
QuerySpec MakeRandomHypergraphQuery(int n, int num_complex_edges, uint64_t seed,
                                    const WorkloadOptions& opts = {});

/// Knobs for the mixed-traffic generator feeding the plan service.
struct TrafficMixOptions {
  uint64_t seed = 42;
  /// Relative shape weights (need not sum to 1; all-zero means uniform).
  double chain_weight = 0.35;
  double star_weight = 0.25;
  double cycle_weight = 0.25;
  double clique_weight = 0.15;
  /// Total-relation-count range for all shapes (a star drawn at size n has
  /// n - 1 satellites plus the hub) with a separate, tighter cap for
  /// cliques.
  int min_relations = 4;
  int max_relations = 12;
  int clique_max_relations = 10;
  /// Size of the pool of distinct queries the traffic is drawn from. Real
  /// workloads repeat templates heavily; a finite pool gives the plan cache
  /// something to hit. <= 0 makes every query distinct.
  int distinct_templates = 32;
  /// Per-template workload knobs (cardinality/selectivity ranges).
  WorkloadOptions workload;
};

/// Emits `count` specs drawn from a seeded pool of mixed chain/star/cycle/
/// clique templates. Deterministic for a given option set: two calls yield
/// identical traffic, which the service tests rely on.
std::vector<QuerySpec> GenerateTrafficMix(int count,
                                          const TrafficMixOptions& opts = {});

/// Zipf(s) sampler over ranks 0..n-1 (rank 0 hottest): P(k) proportional to
/// 1 / (k+1)^s. Inverse-CDF over a precomputed table, so sampling is a
/// binary search and two samplers with equal (n, s) and equal RNG streams
/// emit identical rank sequences. s = 0 degenerates to uniform; the usual
/// skewed-traffic settings are s in [0.9, 1.2], where a few hot templates
/// carry most of the load — the regime that makes single-flight coalescing
/// and the plan cache earn their keep.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);

  /// Draws one rank in [0, n) using the caller's RNG stream.
  int Sample(Rng& rng) const;

  int n() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1.0
};

/// Open-loop Poisson arrival times: `count` absolute offsets in seconds
/// from t=0 with exponential inter-arrival gaps at `rate_per_sec`. Open
/// loop means the schedule ignores service completions — a loadgen that
/// honors it keeps sending at the target rate even while the service
/// queues, which is what makes queueing delay visible in the measured
/// latency (closed-loop generators coordinate omission away).
std::vector<double> PoissonArrivalTimes(int count, double rate_per_sec,
                                        Rng& rng);

}  // namespace dphyp

#endif  // DPHYP_WORKLOAD_GENERATORS_H_
