#include "hypergraph/builder.h"

#include <utility>

#include "hypergraph/connectivity.h"
#include "util/check.h"

namespace dphyp {

Result<Hypergraph> BuildHypergraph(const QuerySpec& spec) {
  Result<bool> valid = spec.Validate();
  if (!valid.ok()) return valid.error();

  Hypergraph graph;
  for (int i = 0; i < spec.NumRelations(); ++i) {
    const RelationInfo& rel = spec.relations[i];
    HypergraphNode node;
    node.name = rel.name;
    node.cardinality = rel.cardinality;
    node.free_tables = rel.free_tables;
    graph.AddNode(std::move(node));
  }
  for (size_t i = 0; i < spec.predicates.size(); ++i) {
    const Predicate& p = spec.predicates[i];
    Hyperedge edge;
    edge.left = p.left;
    edge.right = p.right;
    edge.flex = p.flex;
    edge.selectivity = p.selectivity;
    edge.op = p.op;
    edge.predicate_id = static_cast<int>(i);
    graph.AddEdge(edge);
  }

  // Connectivity repair (Sec. 2.1): one selectivity-1 inner-join hyperedge
  // per component pair.
  std::vector<NodeSet> components = UnionFindComponents(graph);
  for (size_t a = 0; a + 1 < components.size(); ++a) {
    for (size_t b = a + 1; b < components.size(); ++b) {
      Hyperedge repair;
      repair.left = components[a];
      repair.right = components[b];
      repair.selectivity = 1.0;
      repair.op = OpType::kJoin;
      repair.predicate_id = -1;
      graph.AddEdge(repair);
    }
  }
  return graph;
}

Hypergraph BuildHypergraphOrDie(const QuerySpec& spec) {
  Result<Hypergraph> result = BuildHypergraph(spec);
  DPHYP_CHECK_MSG(result.ok(), result.error().message.c_str());
  return std::move(result).value();
}

}  // namespace dphyp
