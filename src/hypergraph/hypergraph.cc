#include "hypergraph/hypergraph.h"

#include "util/check.h"

namespace dphyp {

template <typename NS>
std::string BasicHyperedge<NS>::ToString() const {
  std::string out = "(" + left.ToString() + ", " + right.ToString();
  if (!flex.Empty()) out += ", flex=" + flex.ToString();
  out += ") op=" + std::string(OpSymbol(op)) +
         " sel=" + std::to_string(selectivity);
  return out;
}

template <typename NS>
int BasicHypergraph<NS>::AddNode(Node node) {
  DPHYP_CHECK_MSG(NumNodes() < NS::kMaxNodes,
                  "too many nodes for this node-set width");
  if (!node.free_tables.Empty()) has_dependent_leaves_ = true;
  nodes_.push_back(std::move(node));
  simple_neighbors_.push_back(NS());
  return NumNodes() - 1;
}

template <typename NS>
int BasicHypergraph<NS>::AddEdge(Edge edge) {
  DPHYP_CHECK(!edge.left.Empty() && !edge.right.Empty());
  DPHYP_CHECK(!edge.left.Intersects(edge.right));
  DPHYP_CHECK(!edge.left.Intersects(edge.flex) &&
              !edge.right.Intersects(edge.flex));
  DPHYP_CHECK(edge.AllNodes().IsSubsetOf(AllNodes()));
  int id = NumEdges();
  if (edge.IsSimple()) {
    int l = edge.left.Min();
    int r = edge.right.Min();
    simple_neighbors_[l] |= NS::Single(r);
    simple_neighbors_[r] |= NS::Single(l);
  } else {
    complex_edge_ids_.push_back(id);
  }
  edges_.push_back(edge);
  return id;
}

namespace internal {

template <typename NS>
NS ResolveCandidateNeighborhood(const NS* candidates, int num_candidates,
                                NS simple) {
  NS result = simple;
  for (int i = 0; i < num_candidates; ++i) {
    // Subsumed by a simple neighbor?
    if (candidates[i].Intersects(simple)) continue;
    bool subsumed = false;
    for (int j = 0; j < num_candidates && !subsumed; ++j) {
      if (i == j) continue;
      // Keep only inclusion-minimal candidates; break ties (equal sets)
      // in favor of the earlier index.
      if (candidates[j].IsSubsetOf(candidates[i]) &&
          (candidates[j] != candidates[i] || j < i)) {
        subsumed = true;
      }
    }
    if (!subsumed) result |= candidates[i].MinSet();
  }
  return result;
}

template NodeSet ResolveCandidateNeighborhood<NodeSet>(const NodeSet*, int,
                                                       NodeSet);
template WideNodeSet ResolveCandidateNeighborhood<WideNodeSet>(
    const WideNodeSet*, int, WideNodeSet);
template HugeNodeSet ResolveCandidateNeighborhood<HugeNodeSet>(
    const HugeNodeSet*, int, HugeNodeSet);

}  // namespace internal

template <typename NS>
NS BasicHypergraph<NS>::Neighborhood(NS S, NS X) const {
  const NS forbidden = S | X;

  // Simple edges: far sides are singletons, inherently minimal hypernodes.
  NS simple;
  for (int v : S) simple |= simple_neighbors_[v];
  simple -= forbidden;
  if (complex_edge_ids_.empty()) return simple;

  // Complex edges: collect candidate far-side hypernodes E#'(S, X), then
  // prune subsumed candidates to obtain E#(S, X) (Sec. 2.3). A candidate is
  // subsumed if it has a (strict or equal) subset among the other candidates
  // or contains one of the simple singleton neighbors.
  NS candidates[internal::kMaxNeighborhoodCandidates];
  int num_candidates = 0;
  auto consider = [&](NS near_side, NS far_side, NS flex) {
    if (!near_side.IsSubsetOf(S)) return;
    NS target = far_side | (flex - S);
    if (target.Intersects(forbidden)) return;
    if (num_candidates < internal::kMaxNeighborhoodCandidates) {
      candidates[num_candidates++] = target;
    }
  };
  for (int id : complex_edge_ids_) {
    const Edge& e = edges_[id];
    consider(e.left, e.right, e.flex);
    consider(e.right, e.left, e.flex);
  }
  return internal::ResolveCandidateNeighborhood(candidates, num_candidates,
                                                simple);
}

template <typename NS>
bool BasicHypergraph<NS>::ConnectsSets(NS S1, NS S2) const {
  DPHYP_DCHECK(!S1.Intersects(S2));
  // Simple edges: test adjacency bitsets from the smaller side.
  NS probe = S1.Count() <= S2.Count() ? S1 : S2;
  NS other = probe == S1 ? S2 : S1;
  for (int v : probe) {
    if (simple_neighbors_[v].Intersects(other)) return true;
  }
  NS both = S1 | S2;
  for (int id : complex_edge_ids_) {
    const Edge& e = edges_[id];
    if (!e.flex.IsSubsetOf(both)) continue;
    if ((e.left.IsSubsetOf(S1) && e.right.IsSubsetOf(S2)) ||
        (e.left.IsSubsetOf(S2) && e.right.IsSubsetOf(S1))) {
      return true;
    }
  }
  return false;
}

template <typename NS>
NS BasicHypergraph<NS>::FreeTables(NS S) const {
  if (!has_dependent_leaves_) return NS();
  NS free;
  for (int v : S) free |= nodes_[v].free_tables;
  return free - S;
}

template <typename NS>
std::string BasicHypergraph<NS>::ToString() const {
  std::string out = "Hypergraph(" + std::to_string(NumNodes()) + " nodes)\n";
  for (int i = 0; i < NumNodes(); ++i) {
    out += "  R" + std::to_string(i) + " " + nodes_[i].name +
           " card=" + std::to_string(nodes_[i].cardinality) + "\n";
  }
  for (const Edge& e : edges_) {
    out += "  edge " + e.ToString() + "\n";
  }
  return out;
}

template struct BasicHyperedge<NodeSet>;
template struct BasicHyperedge<WideNodeSet>;
template struct BasicHyperedge<HugeNodeSet>;
template class BasicHypergraph<NodeSet>;
template class BasicHypergraph<WideNodeSet>;
template class BasicHypergraph<HugeNodeSet>;

}  // namespace dphyp
