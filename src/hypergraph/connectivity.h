// Reference implementations of Def. 3 connectivity and csg / csg-cmp-pair
// counting.
//
// These are intentionally exponential, definition-faithful oracles: the
// enumeration algorithms are validated against them, and the ccp count is
// the proven lower bound on cost-function calls of any DP join-ordering
// algorithm (Sec. 2.2), which bench_ccp_counts compares against measured
// emit counts.
//
// The connectivity tester, the union-find components, and the polynomial
// Def. 3 closure are width-generic (they run on wide graphs inside the
// builder, the parallel enumerator, and the wide routing path); the O(2^n)
// enumeration oracles stay narrow — they are capped at 24 nodes anyway.
#ifndef DPHYP_HYPERGRAPH_CONNECTIVITY_H_
#define DPHYP_HYPERGRAPH_CONNECTIVITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/node_set.h"

namespace dphyp {

/// Memoizing Def. 3 connectivity oracle. A node set S is connected iff
/// |S| = 1 or S splits into two connected parts joined by an edge whose
/// hypernodes are fully contained in the respective parts.
template <typename NS>
class BasicConnectivityTester {
 public:
  explicit BasicConnectivityTester(const BasicHypergraph<NS>& graph)
      : graph_(graph) {}

  /// True iff S induces a connected subgraph (Def. 3). Exponential in |S|;
  /// use only in tests, counting, and graph setup.
  bool IsConnected(NS S);

 private:
  const BasicHypergraph<NS>& graph_;
  std::unordered_map<NS, bool, NodeSetHasher> memo_;
};

using ConnectivityTester = BasicConnectivityTester<NodeSet>;

/// Union-find style components: every edge merges all nodes of u ∪ v ∪ w.
/// This over-approximates Def. 3 connectivity (Def.-3-connected implies
/// same component) and is used for connectivity repair in the builder.
template <typename NS>
std::vector<NS> UnionFindComponents(const BasicHypergraph<NS>& graph);

/// Exact Def. 3 connectivity in polynomial time, via component closure:
/// start from singletons of S and repeatedly merge two components A, B
/// whenever an edge (u, w) has u ⊆ A, w ⊆ B, and flex ⊆ A ∪ B; S is
/// connected iff one component remains. Each merge is a valid Def.-3 merge
/// (soundness), and the merge relation is monotone under coarsening — a
/// usable edge stays usable after unrelated merges — so the closure is
/// confluent and can replay any Def.-3 merge tree bottom-up (completeness).
/// O(|S| · |E| · rounds) with rounds <= |S|; unlike ConnectivityTester this
/// is cheap enough for enumeration-time use (the parallel DPhyp structure
/// pass tests candidate sets grown through complex-edge representatives).
/// tests/test_connectivity.cc asserts equivalence with the exponential
/// oracle on randomized hypergraphs.
template <typename NS>
bool IsConnectedDef3(const BasicHypergraph<NS>& graph, NS S);

/// Number of connected subgraphs (csg) — the number of DP table entries any
/// of the DP variants materializes (Sec. 3.6). O(2^n) with n = #nodes.
uint64_t CountConnectedSubgraphs(const Hypergraph& graph);

/// Number of csg-cmp-pairs, counting (S1, S2) and (S2, S1) once — the
/// minimal number of cost-function calls of any DP algorithm (Sec. 2.2).
/// O(3^n).
uint64_t CountCsgCmpPairs(const Hypergraph& graph);

/// All connected subgraphs, ascending by numeric set value. O(2^n).
std::vector<NodeSet> EnumerateConnectedSubgraphs(const Hypergraph& graph);

/// All csg-cmp-pairs as (S1, S2) with min(S1) < min(S2), in an unspecified
/// but deterministic order. O(3^n). Used to validate DPhyp's emissions.
std::vector<std::pair<NodeSet, NodeSet>> EnumerateCsgCmpPairs(
    const Hypergraph& graph);

}  // namespace dphyp

#endif  // DPHYP_HYPERGRAPH_CONNECTIVITY_H_
