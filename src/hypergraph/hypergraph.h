// Query hypergraph (Def. 1) with generalized hyperedges (Def. 6) and the
// neighborhood computation of Sec. 2.3.
//
// Nodes are relations, edges abstract join predicates. An edge is a triple
// (u, v, w): `u` must appear on one side of the join, `v` on the other, and
// the members of `w` may go to either side. Simple edges (|u| = |v| = 1,
// w = {}) are stored as per-node adjacency bitsets for speed; complex edges
// are scanned linearly (query graphs have few of them).
#ifndef DPHYP_HYPERGRAPH_HYPERGRAPH_H_
#define DPHYP_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "catalog/operator_type.h"
#include "util/node_set.h"

namespace dphyp {

/// One hyperedge. `left`/`right` are the hypernodes u and v; `flex` is the
/// either-side set w of generalized hyperedges (empty for Def. 1 edges).
struct Hyperedge {
  NodeSet left;
  NodeSet right;
  NodeSet flex;
  /// Raw predicate selectivity (fraction of cross product kept).
  double selectivity = 1.0;
  /// Operator the edge was derived from (Sec. 5.4 attaches operators to
  /// edges so EmitCsgCmp can recover them). Plain inner joins use kJoin.
  OpType op = OpType::kJoin;
  /// Index of the originating predicate in the QuerySpec, or -1 for
  /// synthetic edges (e.g. connectivity repair).
  int predicate_id = -1;

  bool IsSimple() const {
    return left.IsSingleton() && right.IsSingleton() && flex.Empty();
  }
  NodeSet AllNodes() const { return left | right | flex; }
  std::string ToString() const;
};

/// Node payload: display name, base cardinality, and — for table-valued
/// function leaves — the set of tables the leaf references freely.
struct HypergraphNode {
  std::string name;
  double cardinality = 1000.0;
  NodeSet free_tables;
};

/// The query hypergraph. Immutable after construction (use
/// HypergraphBuilder or AddNode/AddEdge during setup only).
class Hypergraph {
 public:
  Hypergraph() = default;

  /// Adds a node; returns its index (also its position in the total node
  /// order `<` of Def. 1).
  int AddNode(HypergraphNode node);

  /// Adds an edge; returns its index. Sides must be non-empty, pairwise
  /// disjoint, and within range.
  int AddEdge(Hyperedge edge);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  NodeSet AllNodes() const { return NodeSet::FullSet(NumNodes()); }

  const HypergraphNode& node(int i) const { return nodes_[i]; }
  const Hyperedge& edge(int i) const { return edges_[i]; }
  const std::vector<Hyperedge>& edges() const { return edges_; }
  /// Indices of edges that are not simple.
  const std::vector<int>& complex_edge_ids() const { return complex_edge_ids_; }
  /// Union of simple-edge neighbors of `node`.
  NodeSet SimpleNeighbors(int node) const { return simple_neighbors_[node]; }

  /// The paper's N(S, X) (Eq. 1): for every non-subsumed hyperedge reachable
  /// from S whose far side avoids S and X, the minimal node of the far side
  /// is included. Simple edges contribute their (singleton) far sides
  /// directly. Generalized edges contribute v ∪ (w \ S).
  NodeSet Neighborhood(NodeSet S, NodeSet X) const;

  /// True iff some edge connects S1 and S2 per Def. 7: u ⊆ S1, v ⊆ S2 (or
  /// swapped) and w ⊆ S1 ∪ S2. S1 and S2 must be disjoint.
  bool ConnectsSets(NodeSet S1, NodeSet S2) const;

  /// Invokes `fn(edge_index, left_side_in_s1)` for every edge connecting S1
  /// and S2. `left_side_in_s1` tells which orientation matched, which
  /// EmitCsgCmp uses to rebuild non-commutative operators correctly.
  template <typename Fn>
  void ForEachConnectingEdge(NodeSet S1, NodeSet S2, Fn&& fn) const {
    NodeSet both = S1 | S2;
    for (int i = 0; i < NumEdges(); ++i) {
      const Hyperedge& e = edges_[i];
      if (!e.flex.IsSubsetOf(both)) continue;
      if (e.left.IsSubsetOf(S1) && e.right.IsSubsetOf(S2)) {
        fn(i, true);
      } else if (e.left.IsSubsetOf(S2) && e.right.IsSubsetOf(S1)) {
        fn(i, false);
      }
    }
  }

  /// Union of free-table sets of the nodes in S (used for the dependent-
  /// operator conversion rule of Sec. 5.6).
  NodeSet FreeTables(NodeSet S) const;

  /// True if any node carries a non-empty free-table set.
  bool HasDependentLeaves() const { return has_dependent_leaves_; }

  std::string ToString() const;

 private:
  std::vector<HypergraphNode> nodes_;
  std::vector<Hyperedge> edges_;
  std::vector<NodeSet> simple_neighbors_;
  std::vector<int> complex_edge_ids_;
  bool has_dependent_leaves_ = false;
};

namespace internal {

/// Maximum complex-edge candidates one neighborhood computation considers.
inline constexpr int kMaxNeighborhoodCandidates = 128;

/// Shared tail of the Sec. 2.3 neighborhood computation, used by both
/// Hypergraph::Neighborhood and the memoized NeighborhoodCache so the two
/// stay bit-for-bit equivalent: given the forbidden-filtered complex-edge
/// candidates and the (already-filtered) simple neighborhood, drop every
/// candidate subsumed by a simple neighbor or by an inclusion-smaller
/// candidate (equal sets: the earlier index wins) and return `simple`
/// united with the survivors' minimal nodes.
NodeSet ResolveCandidateNeighborhood(const NodeSet* candidates,
                                     int num_candidates, NodeSet simple);

}  // namespace internal

}  // namespace dphyp

#endif  // DPHYP_HYPERGRAPH_HYPERGRAPH_H_
