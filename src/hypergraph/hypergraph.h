// Query hypergraph (Def. 1) with generalized hyperedges (Def. 6) and the
// neighborhood computation of Sec. 2.3.
//
// Nodes are relations, edges abstract join predicates. An edge is a triple
// (u, v, w): `u` must appear on one side of the join, `v` on the other, and
// the members of `w` may go to either side. Simple edges (|u| = |v| = 1,
// w = {}) are stored as per-node adjacency bitsets for speed; complex edges
// are scanned linearly (query graphs have few of them).
//
// The graph is templated on the node-set type: `Hypergraph`
// (= BasicHypergraph<NodeSet>) is the one-word fast path every narrow
// caller uses; BasicHypergraph<WideNodeSet> / <HugeNodeSet> carry 65–128 /
// 129–256 relation graphs through the same enumeration cores.
#ifndef DPHYP_HYPERGRAPH_HYPERGRAPH_H_
#define DPHYP_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "catalog/operator_type.h"
#include "util/node_set.h"

namespace dphyp {

/// One hyperedge. `left`/`right` are the hypernodes u and v; `flex` is the
/// either-side set w of generalized hyperedges (empty for Def. 1 edges).
template <typename NS>
struct BasicHyperedge {
  NS left;
  NS right;
  NS flex;
  /// Raw predicate selectivity (fraction of cross product kept).
  double selectivity = 1.0;
  /// Operator the edge was derived from (Sec. 5.4 attaches operators to
  /// edges so EmitCsgCmp can recover them). Plain inner joins use kJoin.
  OpType op = OpType::kJoin;
  /// Index of the originating predicate in the QuerySpec, or -1 for
  /// synthetic edges (e.g. connectivity repair).
  int predicate_id = -1;

  bool IsSimple() const {
    return left.IsSingleton() && right.IsSingleton() && flex.Empty();
  }
  NS AllNodes() const { return left | right | flex; }
  std::string ToString() const;
};

/// Node payload: display name, base cardinality, and — for table-valued
/// function leaves — the set of tables the leaf references freely.
template <typename NS>
struct BasicHypergraphNode {
  std::string name;
  double cardinality = 1000.0;
  NS free_tables;
};

/// The query hypergraph. Immutable after construction (use
/// HypergraphBuilder or AddNode/AddEdge during setup only).
template <typename NS>
class BasicHypergraph {
 public:
  using NodeSetType = NS;
  using Edge = BasicHyperedge<NS>;
  using Node = BasicHypergraphNode<NS>;

  BasicHypergraph() = default;

  /// Adds a node; returns its index (also its position in the total node
  /// order `<` of Def. 1).
  int AddNode(Node node);

  /// Adds an edge; returns its index. Sides must be non-empty, pairwise
  /// disjoint, and within range.
  int AddEdge(Edge edge);

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  NS AllNodes() const { return NS::FullSet(NumNodes()); }

  const Node& node(int i) const { return nodes_[i]; }
  const Edge& edge(int i) const { return edges_[i]; }
  const std::vector<Edge>& edges() const { return edges_; }
  /// Indices of edges that are not simple.
  const std::vector<int>& complex_edge_ids() const { return complex_edge_ids_; }
  /// Union of simple-edge neighbors of `node`.
  NS SimpleNeighbors(int node) const { return simple_neighbors_[node]; }

  /// The paper's N(S, X) (Eq. 1): for every non-subsumed hyperedge reachable
  /// from S whose far side avoids S and X, the minimal node of the far side
  /// is included. Simple edges contribute their (singleton) far sides
  /// directly. Generalized edges contribute v ∪ (w \ S).
  NS Neighborhood(NS S, NS X) const;

  /// True iff some edge connects S1 and S2 per Def. 7: u ⊆ S1, v ⊆ S2 (or
  /// swapped) and w ⊆ S1 ∪ S2. S1 and S2 must be disjoint.
  bool ConnectsSets(NS S1, NS S2) const;

  /// Invokes `fn(edge_index, left_side_in_s1)` for every edge connecting S1
  /// and S2. `left_side_in_s1` tells which orientation matched, which
  /// EmitCsgCmp uses to rebuild non-commutative operators correctly.
  template <typename Fn>
  void ForEachConnectingEdge(NS S1, NS S2, Fn&& fn) const {
    NS both = S1 | S2;
    for (int i = 0; i < NumEdges(); ++i) {
      const Edge& e = edges_[i];
      if (!e.flex.IsSubsetOf(both)) continue;
      if (e.left.IsSubsetOf(S1) && e.right.IsSubsetOf(S2)) {
        fn(i, true);
      } else if (e.left.IsSubsetOf(S2) && e.right.IsSubsetOf(S1)) {
        fn(i, false);
      }
    }
  }

  /// Union of free-table sets of the nodes in S (used for the dependent-
  /// operator conversion rule of Sec. 5.6).
  NS FreeTables(NS S) const;

  /// True if any node carries a non-empty free-table set.
  bool HasDependentLeaves() const { return has_dependent_leaves_; }

  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<NS> simple_neighbors_;
  std::vector<int> complex_edge_ids_;
  bool has_dependent_leaves_ = false;
};

/// The one-word graph every narrow (<= 64 relation) caller uses.
using Hyperedge = BasicHyperedge<NodeSet>;
using HypergraphNode = BasicHypergraphNode<NodeSet>;
using Hypergraph = BasicHypergraph<NodeSet>;
/// The 128-relation wide path (see core/wide.h for routing).
using WideHyperedge = BasicHyperedge<WideNodeSet>;
using WideHypergraphNode = BasicHypergraphNode<WideNodeSet>;
using WideHypergraph = BasicHypergraph<WideNodeSet>;

namespace internal {

/// Maximum complex-edge candidates one neighborhood computation considers.
inline constexpr int kMaxNeighborhoodCandidates = 128;

/// Shared tail of the Sec. 2.3 neighborhood computation, used by both
/// Hypergraph::Neighborhood and the memoized NeighborhoodCache so the two
/// stay bit-for-bit equivalent: given the forbidden-filtered complex-edge
/// candidates and the (already-filtered) simple neighborhood, drop every
/// candidate subsumed by a simple neighbor or by an inclusion-smaller
/// candidate (equal sets: the earlier index wins) and return `simple`
/// united with the survivors' minimal nodes.
template <typename NS>
NS ResolveCandidateNeighborhood(const NS* candidates, int num_candidates,
                                NS simple);

}  // namespace internal

}  // namespace dphyp

#endif  // DPHYP_HYPERGRAPH_HYPERGRAPH_H_
