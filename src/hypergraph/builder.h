// Builds a Hypergraph from a QuerySpec, including the connectivity repair
// described in Sec. 2.1: if the predicate-induced hypergraph has several
// connected components, a selectivity-1 hyperedge whose hypernodes are
// exactly the components is added for every component pair, yielding an
// equivalent connected hypergraph (the cross product is forced to the top).
#ifndef DPHYP_HYPERGRAPH_BUILDER_H_
#define DPHYP_HYPERGRAPH_BUILDER_H_

#include "catalog/query_spec.h"
#include "hypergraph/hypergraph.h"
#include "util/result.h"

namespace dphyp {

/// Converts a validated QuerySpec into a connected Hypergraph.
/// Fails if the spec does not validate.
Result<Hypergraph> BuildHypergraph(const QuerySpec& spec);

/// Same, but aborts on invalid specs. Convenience for tests and generators
/// whose specs are correct by construction.
Hypergraph BuildHypergraphOrDie(const QuerySpec& spec);

}  // namespace dphyp

#endif  // DPHYP_HYPERGRAPH_BUILDER_H_
