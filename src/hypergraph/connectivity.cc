#include "hypergraph/connectivity.h"

#include <numeric>

#include "util/check.h"
#include "util/subset.h"

namespace dphyp {

template <typename NS>
bool BasicConnectivityTester<NS>::IsConnected(NS S) {
  DPHYP_CHECK(!S.Empty());
  if (S.IsSingleton()) return true;
  auto it = memo_.find(S);
  if (it != memo_.end()) return it->second;

  bool connected = false;
  // Enumerate partitions (S1, S2) with min(S) in S1 (each unordered
  // partition once). S1 ranges over subsets of S \ min(S), unioned with min.
  NS rest = S.MinusMin();
  NS min_set = S.MinSet();
  for (NS part : ProperSubsetsOf(rest)) {
    NS S1 = min_set | part;
    NS S2 = S - S1;
    if (graph_.ConnectsSets(S1, S2) && IsConnected(S1) && IsConnected(S2)) {
      connected = true;
      break;
    }
  }
  if (!connected) {
    // The partition ({min}, rest) is not produced by ProperSubsetsOf(rest)
    // (empty part), so test it explicitly.
    NS S2 = rest;
    if (graph_.ConnectsSets(min_set, S2) && IsConnected(S2)) connected = true;
  }
  memo_[S] = connected;
  return connected;
}

template class BasicConnectivityTester<NodeSet>;
template class BasicConnectivityTester<WideNodeSet>;
template class BasicConnectivityTester<HugeNodeSet>;

template <typename NS>
std::vector<NS> UnionFindComponents(const BasicHypergraph<NS>& graph) {
  int n = graph.NumNodes();
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };
  for (const BasicHyperedge<NS>& e : graph.edges()) {
    NS all = e.AllNodes();
    int first = all.Min();
    for (int v : all) unite(first, v);
  }
  std::vector<NS> components;
  for (int root = 0; root < n; ++root) {
    if (find(root) != root) continue;
    NS comp;
    for (int v = 0; v < n; ++v) {
      if (find(v) == root) comp |= NS::Single(v);
    }
    components.push_back(comp);
  }
  return components;
}

template std::vector<NodeSet> UnionFindComponents<NodeSet>(const Hypergraph&);
template std::vector<WideNodeSet> UnionFindComponents<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&);
template std::vector<HugeNodeSet> UnionFindComponents<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&);

template <typename NS>
bool IsConnectedDef3(const BasicHypergraph<NS>& graph, NS S) {
  DPHYP_CHECK(!S.Empty());
  if (S.IsSingleton()) return true;
  // Component closure over the induced sub-hypergraph. Components are kept
  // as bitsets in a small flat array; `comp_of` maps a node to its entry.
  NS components[NS::kMaxNodes];
  int comp_of[NS::kMaxNodes];
  int num_components = 0;
  for (int v : S) {
    components[num_components] = NS::Single(v);
    comp_of[v] = num_components++;
  }
  int live = num_components;
  // A merge can only enable further merges, so iterating edges to fixpoint
  // terminates after at most |S| - 1 successful rounds.
  bool merged = true;
  while (merged && live > 1) {
    merged = false;
    for (const BasicHyperedge<NS>& e : graph.edges()) {
      if (!e.AllNodes().IsSubsetOf(S)) continue;
      // Each endpoint hypernode must sit inside a single component; the
      // flexible set may straddle the two (it joins whichever side takes
      // it, so A ∪ B covering it suffices).
      const int a = comp_of[e.left.Min()];
      const int b = comp_of[e.right.Min()];
      if (a == b) continue;
      if (!e.left.IsSubsetOf(components[a]) ||
          !e.right.IsSubsetOf(components[b])) {
        continue;
      }
      if (!e.flex.IsSubsetOf(components[a] | components[b])) continue;
      components[a] |= components[b];
      for (int v : components[b]) comp_of[v] = a;
      components[b] = NS();
      --live;
      merged = true;
      if (live == 1) return true;
    }
  }
  return live == 1;
}

template bool IsConnectedDef3<NodeSet>(const Hypergraph&, NodeSet);
template bool IsConnectedDef3<WideNodeSet>(const BasicHypergraph<WideNodeSet>&,
                                           WideNodeSet);
template bool IsConnectedDef3<HugeNodeSet>(const BasicHypergraph<HugeNodeSet>&,
                                           HugeNodeSet);

std::vector<NodeSet> EnumerateConnectedSubgraphs(const Hypergraph& graph) {
  DPHYP_CHECK_MSG(graph.NumNodes() <= 24, "exponential oracle limited to 24 nodes");
  ConnectivityTester tester(graph);
  std::vector<NodeSet> out;
  uint64_t full = graph.AllNodes().bits();
  for (uint64_t bits = 1; bits <= full; ++bits) {
    NodeSet s(bits);
    if (tester.IsConnected(s)) out.push_back(s);
  }
  return out;
}

uint64_t CountConnectedSubgraphs(const Hypergraph& graph) {
  return EnumerateConnectedSubgraphs(graph).size();
}

std::vector<std::pair<NodeSet, NodeSet>> EnumerateCsgCmpPairs(
    const Hypergraph& graph) {
  ConnectivityTester tester(graph);
  std::vector<std::pair<NodeSet, NodeSet>> out;
  uint64_t full = graph.AllNodes().bits();
  for (uint64_t bits = 1; bits <= full; ++bits) {
    NodeSet s(bits);
    if (!tester.IsConnected(s) || s.IsSingleton()) continue;
    // Partitions of s into (S1, S2) with min(s) in S1 give each unordered
    // pair once; we normalize to min(S1) < min(S2), which holds since S1
    // contains the global minimum of s.
    NodeSet rest = s.MinusMin();
    NodeSet min_set = s.MinSet();
    for (NodeSet part : NonEmptySubsetsOf(rest)) {
      if (part == rest) break;  // S2 must be non-empty
      NodeSet S1 = min_set | part;
      NodeSet S2 = s - S1;
      if (tester.IsConnected(S1) && tester.IsConnected(S2) &&
          graph.ConnectsSets(S1, S2)) {
        out.emplace_back(S1, S2);
      }
    }
    // The partition ({min}, rest).
    if (tester.IsConnected(rest) && graph.ConnectsSets(min_set, rest)) {
      out.emplace_back(min_set, rest);
    }
  }
  return out;
}

uint64_t CountCsgCmpPairs(const Hypergraph& graph) {
  return EnumerateCsgCmpPairs(graph).size();
}

}  // namespace dphyp
