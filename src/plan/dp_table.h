// The dynamic-programming table: best plan per connected subgraph.
//
// Keys are node sets (never empty), values are PlanEntry records. Lookups
// are the single hottest operation in every enumeration algorithm — DPhyp
// uses the table as its connectivity oracle (Sec. 3) — so we use a flat
// open-addressing hash table with linear probing instead of
// std::unordered_map. Entries themselves live in a bump-pointer arena
// (util/arena.h): insertion is a pointer bump, entry pointers are stable for
// the lifetime of the table (no reallocation-and-copy on growth — only the
// small slot/index arrays rehash), and teardown is a handful of block frees
// instead of one per entry. Insertion order is preserved, which DPsize
// exploits to bucket plans by size — and which keeps the arena ordered by
// first-touch: leaves (probed on every combine) occupy the densest, hottest
// prefix, and DP classes follow in the subset-before-superset order the
// combine loop re-reads them in.
//
// Two micro-optimizations serve the combine loop (profile-guided; gated by
// the pruning bit-identity suite, which they cannot affect because probe
// *results* are unchanged):
//   - a parallel byte of hash tag per slot filters collision runs without
//     dereferencing arena entries (one cache line of tags covers 64 slots,
//     so a miss costs a tag-array read instead of an entry-line read);
//   - Prefetch(s) lets EmitCsgCmp issue the slot-line loads for S1, S2 and
//     S1 ∪ S2 up front, overlapping the three probe misses (memory-level
//     parallelism) instead of serializing them.
//
// The table is templated on the node-set type; `DpTable`
// (= BasicDpTable<NodeSet>) keys the one-word fast path.
#ifndef DPHYP_PLAN_DP_TABLE_H_
#define DPHYP_PLAN_DP_TABLE_H_

#include <cstdint>
#include <vector>

#include "catalog/operator_type.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/node_set.h"

namespace dphyp {

/// The best known plan for one plan class (set of relations).
template <typename NS>
struct BasicPlanEntry {
  NS set;
  /// Children classes; both empty for base-relation leaves.
  NS left;
  NS right;
  double cost = 0.0;
  double cardinality = 0.0;
  /// Operator combining left and right (possibly a dependent variant after
  /// the Sec. 5.6 conversion); meaningless for leaves.
  OpType op = OpType::kJoin;
  /// Primary connecting edge the plan was built from; -1 for leaves.
  int32_t edge_id = -1;

  bool IsLeaf() const { return left.Empty(); }
};

using PlanEntry = BasicPlanEntry<NodeSet>;

/// Flat hash table node set -> plan entry with arena-backed entry storage.
template <typename NS>
class BasicDpTable {
 public:
  using Entry = BasicPlanEntry<NS>;

  explicit BasicDpTable(size_t expected_entries = 64);

  BasicDpTable(BasicDpTable&&) = default;
  BasicDpTable& operator=(BasicDpTable&&) = default;
  BasicDpTable(const BasicDpTable&) = delete;
  BasicDpTable& operator=(const BasicDpTable&) = delete;

  /// Returns the entry for `s`, or nullptr. Entry pointers are stable:
  /// entries live in the arena, so Insert never invalidates them.
  Entry* Find(NS s) {
    return const_cast<Entry*>(
        static_cast<const BasicDpTable*>(this)->Find(s));
  }
  const Entry* Find(NS s) const;

  /// True iff a plan for `s` exists — the paper's `dpTable[S] != empty` test.
  bool Contains(NS s) const { return Find(s) != nullptr; }

  /// Issues a prefetch for the slot and tag cache lines `s` hashes to.
  /// The combine loop calls this for S1, S2 and S1 ∪ S2 before the
  /// corresponding Finds so the three (likely) cache misses overlap.
  void Prefetch(NS s) const {
    const size_t idx = HashNodeSet(s) & mask_;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[idx]);
    __builtin_prefetch(&tags_[idx]);
#endif
  }

  /// Inserts a new entry for `s` (must not already exist) and returns it.
  Entry* Insert(NS s);

  /// Pre-sizes the slot array and insertion-order index for
  /// `expected_entries` total entries, rehashing at most once. Bulk loaders
  /// that know the final entry count up front (the parallel enumerator
  /// publishes every connected subgraph in one pass) call this to avoid the
  /// doubling-rehash cascade of incremental growth. Existing entries and
  /// their pointers stay valid.
  void Reserve(size_t expected_entries);

  /// Empties the table for a fresh run while *retaining* its memory: the
  /// arena rewinds over its blocks and the slot array is re-zeroed in place
  /// (shrunk only when grossly oversized for `expected_entries`), so a
  /// workspace-pooled table serves steady-state traffic allocation-free.
  /// Every previously returned entry pointer becomes invalid.
  void Reset(size_t expected_entries);

  size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }

  /// Entry pointers in insertion order.
  const std::vector<Entry*>& entries() const { return order_; }

  /// Heap footprint of the table as allocated right now: the arena blocks
  /// holding the entries plus the open-addressing slot array, its tag
  /// bytes, and the insertion-order index (Sec. 3.6 memory accounting).
  /// Every algorithm's OptimizerStats::table_bytes is this value sampled at
  /// Finish() time; it is always at least size() * sizeof(Entry).
  size_t MemoryBytes() const {
    return arena_.bytes_used() + slots_.capacity() * sizeof(uint32_t) +
           tags_.capacity() * sizeof(uint8_t) +
           order_.capacity() * sizeof(Entry*);
  }

 private:
  /// One byte of the key's hash stored next to the slot index: probes
  /// compare it before touching the arena entry, so collision runs resolve
  /// inside the (hot) tag array. Derived from the hash bits *above* the
  /// slot mask so the tag carries information the bucket index does not.
  static uint8_t TagOf(uint64_t hash) {
    return static_cast<uint8_t>(hash >> 56) | 1;  // never 0
  }

  void Grow();
  void Rehash(size_t capacity);

  Arena arena_;
  /// Entries in insertion order; the pointees live in `arena_`.
  std::vector<Entry*> order_;
  /// Open-addressing slots storing entry_index + 1; 0 marks empty.
  std::vector<uint32_t> slots_;
  /// Hash tag per slot; valid only where the slot is non-empty.
  std::vector<uint8_t> tags_;
  size_t mask_ = 0;
};

using DpTable = BasicDpTable<NodeSet>;
using WideDpTable = BasicDpTable<WideNodeSet>;

}  // namespace dphyp

#endif  // DPHYP_PLAN_DP_TABLE_H_
