// The dynamic-programming table: best plan per connected subgraph.
//
// Keys are NodeSets (never empty), values are PlanEntry records. Lookups are
// the single hottest operation in every enumeration algorithm — DPhyp uses
// the table as its connectivity oracle (Sec. 3) — so we use a flat
// open-addressing hash table with linear probing instead of
// std::unordered_map. Entries themselves live in a bump-pointer arena
// (util/arena.h): insertion is a pointer bump, entry pointers are stable for
// the lifetime of the table (no reallocation-and-copy on growth — only the
// small slot/index arrays rehash), and teardown is a handful of block frees
// instead of one per entry. Insertion order is preserved, which DPsize
// exploits to bucket plans by size.
#ifndef DPHYP_PLAN_DP_TABLE_H_
#define DPHYP_PLAN_DP_TABLE_H_

#include <cstdint>
#include <vector>

#include "catalog/operator_type.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/node_set.h"

namespace dphyp {

/// The best known plan for one plan class (set of relations).
struct PlanEntry {
  NodeSet set;
  /// Children classes; both empty for base-relation leaves.
  NodeSet left;
  NodeSet right;
  double cost = 0.0;
  double cardinality = 0.0;
  /// Operator combining left and right (possibly a dependent variant after
  /// the Sec. 5.6 conversion); meaningless for leaves.
  OpType op = OpType::kJoin;
  /// Primary connecting edge the plan was built from; -1 for leaves.
  int32_t edge_id = -1;

  bool IsLeaf() const { return left.Empty(); }
};

/// Flat hash table NodeSet -> PlanEntry with arena-backed entry storage.
class DpTable {
 public:
  explicit DpTable(size_t expected_entries = 64);

  DpTable(DpTable&&) = default;
  DpTable& operator=(DpTable&&) = default;
  DpTable(const DpTable&) = delete;
  DpTable& operator=(const DpTable&) = delete;

  /// Returns the entry for `s`, or nullptr. Entry pointers are stable:
  /// entries live in the arena, so Insert never invalidates them.
  PlanEntry* Find(NodeSet s) {
    return const_cast<PlanEntry*>(
        static_cast<const DpTable*>(this)->Find(s));
  }
  const PlanEntry* Find(NodeSet s) const;

  /// True iff a plan for `s` exists — the paper's `dpTable[S] != empty` test.
  bool Contains(NodeSet s) const { return Find(s) != nullptr; }

  /// Inserts a new entry for `s` (must not already exist) and returns it.
  PlanEntry* Insert(NodeSet s);

  /// Pre-sizes the slot array and insertion-order index for
  /// `expected_entries` total entries, rehashing at most once. Bulk loaders
  /// that know the final entry count up front (the parallel enumerator
  /// publishes every connected subgraph in one pass) call this to avoid the
  /// doubling-rehash cascade of incremental growth. Existing entries and
  /// their pointers stay valid.
  void Reserve(size_t expected_entries);

  /// Empties the table for a fresh run while *retaining* its memory: the
  /// arena rewinds over its blocks and the slot array is re-zeroed in place
  /// (shrunk only when grossly oversized for `expected_entries`), so a
  /// workspace-pooled table serves steady-state traffic allocation-free.
  /// Every previously returned entry pointer becomes invalid.
  void Reset(size_t expected_entries);

  size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }

  /// Entry pointers in insertion order.
  const std::vector<PlanEntry*>& entries() const { return order_; }

  /// Heap footprint of the table as allocated right now: the arena blocks
  /// holding the entries plus the open-addressing slot array and the
  /// insertion-order index (Sec. 3.6 memory accounting). Every algorithm's
  /// OptimizerStats::table_bytes is this value sampled at Finish() time; it
  /// is always at least size() * sizeof(PlanEntry).
  size_t MemoryBytes() const {
    return arena_.bytes_used() + slots_.capacity() * sizeof(uint32_t) +
           order_.capacity() * sizeof(PlanEntry*);
  }

 private:
  void Grow();
  void Rehash(size_t capacity);

  Arena arena_;
  /// Entries in insertion order; the pointees live in `arena_`.
  std::vector<PlanEntry*> order_;
  /// Open-addressing slots storing entry_index + 1; 0 marks empty.
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
};

}  // namespace dphyp

#endif  // DPHYP_PLAN_DP_TABLE_H_
