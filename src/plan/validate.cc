#include "plan/validate.h"

#include <functional>

namespace dphyp {

template <typename NS>
Result<bool> ValidatePlanTree(const BasicHypergraph<NS>& graph,
                              const BasicPlanTree<NS>& plan) {
  using Node = BasicPlanTreeNode<NS>;
  if (!plan.Valid()) return Err("plan has no root");
  NS seen_leaves;
  std::function<Result<bool>(const Node*)> walk =
      [&](const Node* node) -> Result<bool> {
    if (node->IsLeaf()) {
      if (node->relation < 0 || node->relation >= graph.NumNodes()) {
        return Err("leaf names unknown relation");
      }
      if (node->set != NS::Single(node->relation)) {
        return Err("leaf set does not match its relation");
      }
      if (seen_leaves.Contains(node->relation)) {
        return Err("relation appears in two leaves");
      }
      seen_leaves |= node->set;
      return true;
    }
    if (node->left == nullptr || node->right == nullptr) {
      return Err("operator with missing child");
    }
    const NS ls = node->left->set;
    const NS rs = node->right->set;
    if (ls.Intersects(rs)) return Err("children overlap: " + node->set.ToString());
    if ((ls | rs) != node->set) return Err("children do not partition parent");
    if (!graph.ConnectsSets(ls, rs)) {
      return Err("cross product: no edge connects " + ls.ToString() + " and " +
                 rs.ToString());
    }

    // Operator consistency with the connecting edges.
    int non_inner = -1;
    bool orientation_ok = false;
    bool any_inner = false;
    graph.ForEachConnectingEdge(ls, rs, [&](int id, bool left_in_s1) {
      const BasicHyperedge<NS>& e = graph.edge(id);
      if (e.op == OpType::kJoin) {
        any_inner = true;
        return;
      }
      if (non_inner < 0) {
        non_inner = id;
        orientation_ok = IsCommutative(e.op) || left_in_s1;
      }
    });
    const OpType regular = RegularVariant(node->op);
    if (non_inner >= 0) {
      const OpType edge_op = graph.edge(non_inner).op;
      if (regular != edge_op) {
        return Err(std::string("operator mismatch: plan has ") +
                   OpName(node->op) + ", edge demands " + OpName(edge_op));
      }
      if (!orientation_ok) {
        return Err("non-commutative operator applied against its edge "
                   "orientation at " +
                   node->set.ToString());
      }
    } else {
      if (!any_inner) return Err("no usable edge at " + node->set.ToString());
      if (regular != OpType::kJoin) {
        return Err(std::string("plan applies ") + OpName(node->op) +
                   " but only inner edges connect the children");
      }
    }

    // Lateral rule (Sec. 5.6).
    const NS free_right = graph.FreeTables(rs);
    const bool needs_dependent = free_right.Intersects(ls);
    if (needs_dependent != IsDependent(node->op)) {
      return Err(needs_dependent
                     ? "right child is lateral but operator is not dependent"
                     : "dependent operator without a lateral right child");
    }
    if (graph.FreeTables(ls).Intersects(rs)) {
      return Err("left child depends on right child — not executable");
    }

    Result<bool> l = walk(node->left);
    if (!l.ok()) return l;
    return walk(node->right);
  };
  Result<bool> ok = walk(plan.root());
  if (!ok.ok()) return ok;
  if (plan.root()->set != seen_leaves) {
    return Err("root set does not equal the union of leaves");
  }
  return true;
}

template Result<bool> ValidatePlanTree<NodeSet>(const Hypergraph&,
                                                const PlanTree&);
template Result<bool> ValidatePlanTree<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&, const BasicPlanTree<WideNodeSet>&);
template Result<bool> ValidatePlanTree<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&, const BasicPlanTree<HugeNodeSet>&);

}  // namespace dphyp
