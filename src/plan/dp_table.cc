#include "plan/dp_table.h"

#include <algorithm>
#include <bit>

namespace dphyp {

DpTable::DpTable(size_t expected_entries)
    : arena_(/*block_size=*/std::max<size_t>(expected_entries, 64) *
             sizeof(PlanEntry)) {
  size_t capacity = std::bit_ceil(expected_entries * 2 + 16);
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
  order_.reserve(expected_entries);
}

const PlanEntry* DpTable::Find(NodeSet s) const {
  DPHYP_DCHECK(!s.Empty());
  size_t idx = HashNodeSet(s) & mask_;
  for (;;) {
    uint32_t slot = slots_[idx];
    if (slot == 0) return nullptr;
    const PlanEntry* e = order_[slot - 1];
    if (e->set == s) return e;
    idx = (idx + 1) & mask_;
  }
}

PlanEntry* DpTable::Insert(NodeSet s) {
  DPHYP_DCHECK(!s.Empty());
  DPHYP_DCHECK(Find(s) == nullptr);
  if ((order_.size() + 1) * 10 >= slots_.size() * 7) Grow();
  PlanEntry* e = arena_.New<PlanEntry>();
  e->set = s;
  order_.push_back(e);
  size_t idx = HashNodeSet(s) & mask_;
  while (slots_[idx] != 0) idx = (idx + 1) & mask_;
  slots_[idx] = static_cast<uint32_t>(order_.size());
  return e;
}

void DpTable::Reset(size_t expected_entries) {
  arena_.Rewind();
  order_.clear();
  const size_t wanted = std::bit_ceil(expected_entries * 2 + 16);
  // Keep the grown slot array (re-zeroing beats reallocating) unless it is
  // more than 8x what this run needs — then a huge historical query would
  // tax every later small one with an oversized memset.
  if (slots_.size() < wanted || slots_.size() > wanted * 8) {
    slots_.assign(wanted, 0);
  } else {
    std::fill(slots_.begin(), slots_.end(), 0);
  }
  mask_ = slots_.size() - 1;
}

void DpTable::Reserve(size_t expected_entries) {
  order_.reserve(expected_entries);
  const size_t wanted = std::bit_ceil(expected_entries * 2 + 16);
  if (slots_.size() >= wanted) return;
  Rehash(wanted);
}

void DpTable::Grow() { Rehash(slots_.size() * 2); }

void DpTable::Rehash(size_t capacity) {
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (size_t i = 0; i < order_.size(); ++i) {
    size_t idx = HashNodeSet(order_[i]->set) & mask_;
    while (slots_[idx] != 0) idx = (idx + 1) & mask_;
    slots_[idx] = static_cast<uint32_t>(i + 1);
  }
}

}  // namespace dphyp
