#include "plan/dp_table.h"

#include <algorithm>
#include <bit>

namespace dphyp {

template <typename NS>
BasicDpTable<NS>::BasicDpTable(size_t expected_entries)
    : arena_(/*block_size=*/std::max<size_t>(expected_entries, 64) *
             sizeof(Entry)) {
  size_t capacity = std::bit_ceil(expected_entries * 2 + 16);
  slots_.assign(capacity, 0);
  tags_.assign(capacity, 0);
  mask_ = capacity - 1;
  order_.reserve(expected_entries);
}

template <typename NS>
const BasicPlanEntry<NS>* BasicDpTable<NS>::Find(NS s) const {
  DPHYP_DCHECK(!s.Empty());
  const uint64_t hash = HashNodeSet(s);
  const uint8_t tag = TagOf(hash);
  size_t idx = hash & mask_;
  for (;;) {
    uint32_t slot = slots_[idx];
    if (slot == 0) return nullptr;
    // Tag first: a mismatched byte rejects the slot without loading the
    // arena entry's cache line.
    if (tags_[idx] == tag) {
      const Entry* e = order_[slot - 1];
      if (e->set == s) return e;
    }
    idx = (idx + 1) & mask_;
  }
}

template <typename NS>
BasicPlanEntry<NS>* BasicDpTable<NS>::Insert(NS s) {
  DPHYP_DCHECK(!s.Empty());
  DPHYP_DCHECK(Find(s) == nullptr);
  if ((order_.size() + 1) * 10 >= slots_.size() * 7) Grow();
  Entry* e = arena_.template New<Entry>();
  e->set = s;
  order_.push_back(e);
  const uint64_t hash = HashNodeSet(s);
  size_t idx = hash & mask_;
  while (slots_[idx] != 0) idx = (idx + 1) & mask_;
  slots_[idx] = static_cast<uint32_t>(order_.size());
  tags_[idx] = TagOf(hash);
  return e;
}

template <typename NS>
void BasicDpTable<NS>::Reset(size_t expected_entries) {
  arena_.Rewind();
  order_.clear();
  const size_t wanted = std::bit_ceil(expected_entries * 2 + 16);
  // Keep the grown slot array (re-zeroing beats reallocating) unless it is
  // more than 8x what this run needs — then a huge historical query would
  // tax every later small one with an oversized memset.
  if (slots_.size() < wanted || slots_.size() > wanted * 8) {
    slots_.assign(wanted, 0);
    tags_.assign(wanted, 0);
  } else {
    std::fill(slots_.begin(), slots_.end(), 0);
  }
  mask_ = slots_.size() - 1;
}

template <typename NS>
void BasicDpTable<NS>::Reserve(size_t expected_entries) {
  order_.reserve(expected_entries);
  const size_t wanted = std::bit_ceil(expected_entries * 2 + 16);
  if (slots_.size() >= wanted) return;
  Rehash(wanted);
}

template <typename NS>
void BasicDpTable<NS>::Grow() {
  Rehash(slots_.size() * 2);
}

template <typename NS>
void BasicDpTable<NS>::Rehash(size_t capacity) {
  slots_.assign(capacity, 0);
  tags_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (size_t i = 0; i < order_.size(); ++i) {
    const uint64_t hash = HashNodeSet(order_[i]->set);
    size_t idx = hash & mask_;
    while (slots_[idx] != 0) idx = (idx + 1) & mask_;
    slots_[idx] = static_cast<uint32_t>(i + 1);
    tags_[idx] = TagOf(hash);
  }
}

template class BasicDpTable<NodeSet>;
template class BasicDpTable<WideNodeSet>;
template class BasicDpTable<HugeNodeSet>;

}  // namespace dphyp
