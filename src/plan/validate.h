// Structural plan validation: checks a plan tree against its hypergraph.
// Used by the test suite to assert that every plan an optimizer emits is
// well-formed, and available to library users as a debugging aid.
// Width-generic: wide (>64 relation) plans validate through the same rules.
#ifndef DPHYP_PLAN_VALIDATE_H_
#define DPHYP_PLAN_VALIDATE_H_

#include "hypergraph/hypergraph.h"
#include "plan/plan_tree.h"
#include "util/result.h"

namespace dphyp {

/// Validates:
///  * every leaf is a distinct base relation and the root covers a set
///    consistent with its subtree,
///  * children of every operator partition the parent's set,
///  * some hyperedge connects the children (no cross products),
///  * the operator matches the connecting edges: the unique non-inner edge
///    (or inner join if none) with the orientation the edge dictates,
///  * dependent variants appear exactly when the right child's free tables
///    intersect the left child (Sec. 5.6).
/// Returns an error describing the first violation, or true.
template <typename NS>
Result<bool> ValidatePlanTree(const BasicHypergraph<NS>& graph,
                              const BasicPlanTree<NS>& plan);

}  // namespace dphyp

#endif  // DPHYP_PLAN_VALIDATE_H_
