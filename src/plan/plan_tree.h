// Materialized operator trees extracted from a DP table, plus EXPLAIN-style
// rendering. The executor consumes these trees to verify plan semantics.
//
// Templated on the node-set type so wide (>64 relation) plans extract
// through the same code path; `PlanTree` (= BasicPlanTree<NodeSet>) is the
// one-word alias every narrow caller keeps using.
#ifndef DPHYP_PLAN_PLAN_TREE_H_
#define DPHYP_PLAN_PLAN_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/operator_type.h"
#include "hypergraph/hypergraph.h"
#include "plan/dp_table.h"
#include "util/node_set.h"

namespace dphyp {

template <typename NS>
class BasicPlanTree;
template <typename NS>
class BasicPlanBuilder;
template <typename NS>
BasicPlanTree<NS> ExtractPlanTree(const BasicHypergraph<NS>& graph,
                                  const BasicDpTable<NS>& table, NS root_set);

/// One node of a materialized plan tree.
template <typename NS>
struct BasicPlanTreeNode {
  NS set;
  OpType op = OpType::kJoin;
  /// Base relation index for leaves; -1 for inner nodes.
  int relation = -1;
  const BasicPlanTreeNode* left = nullptr;
  const BasicPlanTreeNode* right = nullptr;
  double cost = 0.0;
  double cardinality = 0.0;
  /// Indices of hypergraph edges whose predicates are applied at this
  /// operator (the conjunction EmitCsgCmp assembles).
  std::vector<int> edge_ids;

  bool IsLeaf() const { return relation >= 0; }
};

using PlanTreeNode = BasicPlanTreeNode<NodeSet>;

/// Owning wrapper for a plan tree. Movable; nodes stay valid across moves.
template <typename NS>
class BasicPlanTree {
 public:
  using Node = BasicPlanTreeNode<NS>;

  BasicPlanTree() = default;
  BasicPlanTree(BasicPlanTree&&) = default;
  BasicPlanTree& operator=(BasicPlanTree&&) = default;

  const Node* root() const { return root_; }
  bool Valid() const { return root_ != nullptr; }

  /// Total number of nodes.
  int NumNodes() const;

  /// Single-line algebra rendering, e.g. "((R0 JOIN R1) LOJ R2)".
  std::string ToAlgebraString(const BasicHypergraph<NS>& graph) const;

  /// Multi-line EXPLAIN rendering with costs and cardinalities.
  std::string Explain(const BasicHypergraph<NS>& graph) const;

 private:
  friend BasicPlanTree ExtractPlanTree<NS>(const BasicHypergraph<NS>&,
                                           const BasicDpTable<NS>&, NS);
  friend class BasicPlanBuilder<NS>;

  std::vector<std::unique_ptr<Node>> nodes_;
  const Node* root_ = nullptr;
};

using PlanTree = BasicPlanTree<NodeSet>;
using WidePlanTree = BasicPlanTree<WideNodeSet>;

/// Rebuilds the best plan tree for `root_set` from a populated DP table.
/// The predicate lists per operator are recomputed from the hypergraph
/// (all edges connecting the two child sets — the conjunction of Sec. 3.5).
/// Requires the table to contain `root_set`.
template <typename NS>
BasicPlanTree<NS> ExtractPlanTree(const BasicHypergraph<NS>& graph,
                                  const BasicDpTable<NS>& table, NS root_set);

/// Hand-construction helper used by tests and the executor to build
/// reference trees without running an optimizer.
template <typename NS>
class BasicPlanBuilder {
 public:
  using Node = BasicPlanTreeNode<NS>;

  BasicPlanBuilder() = default;

  const Node* Leaf(int relation, double cardinality = 0.0);
  const Node* Op(OpType op, const Node* left, const Node* right,
                 std::vector<int> edge_ids = {});

  /// Finalizes the tree with the given root.
  BasicPlanTree<NS> Build(const Node* root);

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

using PlanBuilder = BasicPlanBuilder<NodeSet>;

}  // namespace dphyp

#endif  // DPHYP_PLAN_PLAN_TREE_H_
