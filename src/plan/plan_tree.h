// Materialized operator trees extracted from a DP table, plus EXPLAIN-style
// rendering. The executor consumes these trees to verify plan semantics.
#ifndef DPHYP_PLAN_PLAN_TREE_H_
#define DPHYP_PLAN_PLAN_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/operator_type.h"
#include "hypergraph/hypergraph.h"
#include "plan/dp_table.h"
#include "util/node_set.h"

namespace dphyp {

/// One node of a materialized plan tree.
struct PlanTreeNode {
  NodeSet set;
  OpType op = OpType::kJoin;
  /// Base relation index for leaves; -1 for inner nodes.
  int relation = -1;
  const PlanTreeNode* left = nullptr;
  const PlanTreeNode* right = nullptr;
  double cost = 0.0;
  double cardinality = 0.0;
  /// Indices of hypergraph edges whose predicates are applied at this
  /// operator (the conjunction EmitCsgCmp assembles).
  std::vector<int> edge_ids;

  bool IsLeaf() const { return relation >= 0; }
};

/// Owning wrapper for a plan tree. Movable; nodes stay valid across moves.
class PlanTree {
 public:
  PlanTree() = default;
  PlanTree(PlanTree&&) = default;
  PlanTree& operator=(PlanTree&&) = default;

  const PlanTreeNode* root() const { return root_; }
  bool Valid() const { return root_ != nullptr; }

  /// Total number of nodes.
  int NumNodes() const;

  /// Single-line algebra rendering, e.g. "((R0 JOIN R1) LOJ R2)".
  std::string ToAlgebraString(const Hypergraph& graph) const;

  /// Multi-line EXPLAIN rendering with costs and cardinalities.
  std::string Explain(const Hypergraph& graph) const;

 private:
  friend PlanTree ExtractPlanTree(const Hypergraph&, const DpTable&, NodeSet);
  friend class PlanBuilder;

  std::vector<std::unique_ptr<PlanTreeNode>> nodes_;
  const PlanTreeNode* root_ = nullptr;
};

/// Rebuilds the best plan tree for `root_set` from a populated DP table.
/// The predicate lists per operator are recomputed from the hypergraph
/// (all edges connecting the two child sets — the conjunction of Sec. 3.5).
/// Requires the table to contain `root_set`.
PlanTree ExtractPlanTree(const Hypergraph& graph, const DpTable& table,
                         NodeSet root_set);

/// Hand-construction helper used by tests and the executor to build
/// reference trees without running an optimizer.
class PlanBuilder {
 public:
  PlanBuilder() = default;

  const PlanTreeNode* Leaf(int relation, double cardinality = 0.0);
  const PlanTreeNode* Op(OpType op, const PlanTreeNode* left,
                         const PlanTreeNode* right, std::vector<int> edge_ids = {});

  /// Finalizes the tree with the given root.
  PlanTree Build(const PlanTreeNode* root);

 private:
  std::vector<std::unique_ptr<PlanTreeNode>> nodes_;
};

}  // namespace dphyp

#endif  // DPHYP_PLAN_PLAN_TREE_H_
