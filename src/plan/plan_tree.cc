#include "plan/plan_tree.h"

#include <functional>

#include "util/check.h"
#include "util/string_util.h"

namespace dphyp {

template <typename NS>
int BasicPlanTree<NS>::NumNodes() const {
  return static_cast<int>(nodes_.size());
}

namespace {

template <typename NS>
void RenderAlgebra(const BasicPlanTreeNode<NS>* node,
                   const BasicHypergraph<NS>& graph, std::string* out) {
  if (node->IsLeaf()) {
    const std::string& name = graph.node(node->relation).name;
    *out += name.empty() ? "R" + std::to_string(node->relation) : name;
    return;
  }
  *out += "(";
  RenderAlgebra(node->left, graph, out);
  *out += " ";
  *out += OpSymbol(node->op);
  *out += " ";
  RenderAlgebra(node->right, graph, out);
  *out += ")";
}

template <typename NS>
void RenderExplain(const BasicPlanTreeNode<NS>* node,
                   const BasicHypergraph<NS>& graph, const std::string& prefix,
                   bool last, bool is_root, std::string* out) {
  *out += prefix;
  if (!is_root) *out += last ? "└─ " : "├─ ";
  if (node->IsLeaf()) {
    const std::string& name = graph.node(node->relation).name;
    *out += (name.empty() ? "R" + std::to_string(node->relation) : name) +
            "  card=" + FormatDouble(node->cardinality) + "\n";
    return;
  }
  *out += std::string(OpSymbol(node->op)) + " " + node->set.ToString() +
          "  cost=" + FormatDouble(node->cost) +
          " card=" + FormatDouble(node->cardinality);
  if (!node->edge_ids.empty()) {
    *out += " preds=[";
    for (size_t i = 0; i < node->edge_ids.size(); ++i) {
      if (i) *out += ",";
      *out += "e" + std::to_string(node->edge_ids[i]);
    }
    *out += "]";
  }
  *out += "\n";
  std::string child_prefix =
      prefix + (is_root ? "" : (last ? "   " : "│  "));
  RenderExplain(node->left, graph, child_prefix, false, false, out);
  RenderExplain(node->right, graph, child_prefix, true, false, out);
}

}  // namespace

template <typename NS>
std::string BasicPlanTree<NS>::ToAlgebraString(
    const BasicHypergraph<NS>& graph) const {
  DPHYP_CHECK(Valid());
  std::string out;
  RenderAlgebra(root_, graph, &out);
  return out;
}

template <typename NS>
std::string BasicPlanTree<NS>::Explain(const BasicHypergraph<NS>& graph) const {
  DPHYP_CHECK(Valid());
  std::string out;
  RenderExplain(root_, graph, "", true, /*is_root=*/true, &out);
  return out;
}

template <typename NS>
BasicPlanTree<NS> ExtractPlanTree(const BasicHypergraph<NS>& graph,
                                  const BasicDpTable<NS>& table, NS root_set) {
  using Node = BasicPlanTreeNode<NS>;
  BasicPlanTree<NS> tree;
  std::function<const Node*(NS)> build = [&](NS set) -> const Node* {
    const BasicPlanEntry<NS>* entry = table.Find(set);
    DPHYP_CHECK_MSG(entry != nullptr, "plan class missing from DP table");
    auto node = std::make_unique<Node>();
    node->set = set;
    node->cost = entry->cost;
    node->cardinality = entry->cardinality;
    if (entry->IsLeaf()) {
      node->relation = set.Min();
    } else {
      node->op = entry->op;
      node->left = build(entry->left);
      node->right = build(entry->right);
      graph.ForEachConnectingEdge(entry->left, entry->right,
                                  [&](int edge_id, bool /*left_in_s1*/) {
                                    node->edge_ids.push_back(edge_id);
                                  });
    }
    const Node* ptr = node.get();
    tree.nodes_.push_back(std::move(node));
    return ptr;
  };
  tree.root_ = build(root_set);
  return tree;
}

template <typename NS>
const BasicPlanTreeNode<NS>* BasicPlanBuilder<NS>::Leaf(int relation,
                                                        double cardinality) {
  auto node = std::make_unique<Node>();
  node->set = NS::Single(relation);
  node->relation = relation;
  node->cardinality = cardinality;
  const Node* ptr = node.get();
  nodes_.push_back(std::move(node));
  return ptr;
}

template <typename NS>
const BasicPlanTreeNode<NS>* BasicPlanBuilder<NS>::Op(
    OpType op, const Node* left, const Node* right, std::vector<int> edge_ids) {
  DPHYP_CHECK(left != nullptr && right != nullptr);
  DPHYP_CHECK(!left->set.Intersects(right->set));
  auto node = std::make_unique<Node>();
  node->set = left->set | right->set;
  node->op = op;
  node->left = left;
  node->right = right;
  node->edge_ids = std::move(edge_ids);
  const Node* ptr = node.get();
  nodes_.push_back(std::move(node));
  return ptr;
}

template <typename NS>
BasicPlanTree<NS> BasicPlanBuilder<NS>::Build(const Node* root) {
  DPHYP_CHECK(root != nullptr);
  BasicPlanTree<NS> tree;
  tree.nodes_ = std::move(nodes_);
  tree.root_ = root;
  return tree;
}

template class BasicPlanTree<NodeSet>;
template class BasicPlanTree<WideNodeSet>;
template class BasicPlanTree<HugeNodeSet>;
template class BasicPlanBuilder<NodeSet>;
template class BasicPlanBuilder<WideNodeSet>;
template class BasicPlanBuilder<HugeNodeSet>;
template PlanTree ExtractPlanTree<NodeSet>(const Hypergraph&, const DpTable&,
                                           NodeSet);
template BasicPlanTree<WideNodeSet> ExtractPlanTree<WideNodeSet>(
    const BasicHypergraph<WideNodeSet>&, const BasicDpTable<WideNodeSet>&,
    WideNodeSet);
template BasicPlanTree<HugeNodeSet> ExtractPlanTree<HugeNodeSet>(
    const BasicHypergraph<HugeNodeSet>&, const BasicDpTable<HugeNodeSet>&,
    HugeNodeSet);

}  // namespace dphyp
